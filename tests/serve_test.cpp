// Serving-layer tests: protocol behavior, cross-session cache sharing,
// request coalescing, and the determinism contract under concurrency.
//
// All suites are named Serve* so the CI determinism and TSan gates
// (-R '...|Serve') pick them up: the concurrency tests here are the
// only place multiple client threads drive one process, which is
// exactly the surface those gates exist for.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dmv/par/par.hpp"
#include "dmv/serve/server.hpp"
#include "dmv/session/session.hpp"
#include "dmv/util/json.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

using dmv::json::Value;
using dmv::serve::Server;
using dmv::serve::ServerConfig;

Value parse_line(const std::string& line) { return dmv::json::parse(line); }

std::string open_request(const std::string& session,
                         const std::string& workload) {
  return "{\"id\":1,\"method\":\"open_program\",\"params\":{\"session\":\"" +
         session + "\",\"workload\":\"" + workload +
         "\",\"binding\":{\"I\":8,\"J\":8,\"K\":5}}}";
}

std::string step_request(const std::string& session, const std::string& symbol,
                         std::int64_t value) {
  return "{\"id\":2,\"method\":\"step\",\"params\":{\"session\":\"" + session +
         "\",\"symbol\":\"" + symbol + "\",\"value\":" +
         std::to_string(value) + "}}";
}

/// Drives the drag sequence through a lone single-threaded Session —
/// the reference the server must match bit for bit.
std::vector<std::string> reference_checksums(
    const std::vector<std::int64_t>& values) {
  dmv::session::SessionConfig config;
  config.prefetch = false;
  dmv::session::Session session(
      dmv::workloads::hdiff(dmv::workloads::HdiffVariant::Baseline),
      std::move(config));
  session.set_binding({{"I", 8}, {"J", 8}, {"K", 5}});
  std::vector<std::string> checksums;
  for (const std::int64_t value : values) {
    session.set_symbol("K", value);
    checksums.push_back(
        std::to_string(dmv::serve::result_checksum(*session.metrics())));
  }
  return checksums;
}

// ---------------------------------------------------------------------
// Protocol basics and error shapes.

TEST(ServeProtocolTest, OpenBindStepRoundtrip) {
  Server server;
  const Value opened = parse_line(server.handle(open_request("a", "hdiff")));
  ASSERT_TRUE(opened.has("result")) << dmv::json::dump(opened);
  EXPECT_EQ(opened.at("result").at("program").as_string(), "hdiff");
  EXPECT_EQ(opened.at("result").at("symbols").as_array().size(), 3u);

  const Value stepped = parse_line(server.handle(step_request("a", "K", 6)));
  ASSERT_TRUE(stepped.has("result")) << dmv::json::dump(stepped);
  const Value& result = stepped.at("result");
  EXPECT_EQ(result.at("served_by").as_string(), "compute");
  EXPECT_GT(result.at("executions").as_int(), 0);
  EXPECT_FALSE(result.at("checksum").as_string().empty());

  // Same step again: served from this session's local cache.
  const Value repeat = parse_line(server.handle(step_request("a", "K", 6)));
  EXPECT_EQ(repeat.at("result").at("served_by").as_string(), "cache");
  EXPECT_EQ(repeat.at("result").at("checksum").as_string(),
            result.at("checksum").as_string());
}

TEST(ServeProtocolTest, MalformedRequestsGetErrorResponses) {
  Server server;
  struct Case {
    const char* line;
    const char* code;
  };
  const Case cases[] = {
      {"not json at all", "parse_error"},
      {"{\"id\":1}", "bad_request"},  // No method.
      {"{\"id\":2,\"method\":\"frobnicate\"}", "unknown_method"},
      {"{\"id\":3,\"method\":\"step\",\"params\":{\"session\":\"ghost\","
       "\"symbol\":\"K\",\"value\":5}}",
       "unknown_session"},
      {"{\"id\":4,\"method\":\"open_program\",\"params\":{\"session\":\"a\","
       "\"workload\":\"no_such_workload\"}}",
       "bad_program"},
      {"{\"id\":5,\"method\":\"open_program\",\"params\":{\"session\":\"a\"}}",
       "bad_request"},  // Neither workload nor sdfg.
  };
  for (const Case& c : cases) {
    const Value response = parse_line(server.handle(c.line));
    ASSERT_TRUE(response.has("error")) << c.line;
    EXPECT_EQ(response.at("error").at("code").as_string(), c.code) << c.line;
    EXPECT_FALSE(response.at("error").at("message").as_string().empty());
  }
  // Error handling must not have corrupted anything: a valid request
  // still works.
  const Value ok = parse_line(server.handle(open_request("a", "hdiff")));
  EXPECT_TRUE(ok.has("result"));
  EXPECT_EQ(server.stats().errors, 6);
}

TEST(ServeProtocolTest, StepWithBadParamsReportsBadRequest) {
  Server server;
  server.handle(open_request("a", "hdiff"));
  const Value missing = parse_line(
      server.handle("{\"id\":1,\"method\":\"step\",\"params\":"
                    "{\"session\":\"a\"}}"));
  EXPECT_EQ(missing.at("error").at("code").as_string(), "bad_request");
  const Value bad_type = parse_line(
      server.handle("{\"id\":2,\"method\":\"bind\",\"params\":"
                    "{\"session\":\"a\",\"binding\":{\"K\":\"five\"}}}"));
  EXPECT_EQ(bad_type.at("error").at("code").as_string(), "bad_request");
}

TEST(ServeProtocolTest, SubscribeRebuildsSessionPreservingBinding) {
  Server server;
  server.handle(open_request("a", "hdiff"));
  server.handle(step_request("a", "K", 6));
  const Value subscribed = parse_line(server.handle(
      "{\"id\":1,\"method\":\"subscribe\",\"params\":{\"session\":\"a\","
      "\"element_stats\":true,\"miss_threshold_lines\":64,\"prefetch\":"
      "false}}"));
  ASSERT_TRUE(subscribed.has("result")) << dmv::json::dump(subscribed);
  EXPECT_TRUE(subscribed.at("result").at("element_stats").as_bool());
  EXPECT_EQ(subscribed.at("result").at("miss_threshold_lines").as_int(), 64);

  // The rebuilt session kept the binding, and the new subscription
  // matches a lone Session configured the same way.
  const Value stepped = parse_line(server.handle(step_request("a", "K", 7)));
  ASSERT_TRUE(stepped.has("result")) << dmv::json::dump(stepped);

  dmv::session::SessionConfig config;
  config.prefetch = false;
  config.pipeline.element_stats = true;
  config.pipeline.miss_threshold_lines = 64;
  dmv::session::Session reference(
      dmv::workloads::hdiff(dmv::workloads::HdiffVariant::Baseline),
      std::move(config));
  reference.set_binding({{"I", 8}, {"J", 8}, {"K", 7}});
  EXPECT_EQ(stepped.at("result").at("checksum").as_string(),
            std::to_string(
                dmv::serve::result_checksum(*reference.metrics())));
}

TEST(ServeProtocolTest, EditProgramSwitchesVariants) {
  Server server;
  server.handle(open_request("a", "hdiff"));
  const Value baseline = parse_line(server.handle(step_request("a", "K", 6)));
  const Value edited = parse_line(server.handle(
      "{\"id\":1,\"method\":\"edit_program\",\"params\":{\"session\":\"a\","
      "\"workload\":\"hdiff_reordered\"}}"));
  ASSERT_TRUE(edited.has("result")) << dmv::json::dump(edited);
  EXPECT_EQ(edited.at("result").at("program").as_string(), "hdiff_reordered");
  const Value reordered = parse_line(server.handle(step_request("a", "K", 6)));
  ASSERT_TRUE(reordered.has("result"));
  // Different program version, same binding: a fresh computation, and
  // the artifact is keyed by the new content hash.
  EXPECT_EQ(reordered.at("result").at("served_by").as_string(), "compute");
  EXPECT_EQ(baseline.at("result").at("executions").as_int(),
            reordered.at("result").at("executions").as_int());
}

// ---------------------------------------------------------------------
// Cross-session sharing.

TEST(ServeSharedCacheTest, SecondSessionHitsSharedTier) {
  ServerConfig config;
  config.session_defaults.prefetch = false;
  Server server(config);
  server.handle(open_request("alice", "hdiff"));
  server.handle(open_request("bob", "hdiff"));

  const Value first = parse_line(server.handle(step_request("alice", "K", 6)));
  EXPECT_EQ(first.at("result").at("served_by").as_string(), "compute");

  const Value second = parse_line(server.handle(step_request("bob", "K", 6)));
  EXPECT_EQ(second.at("result").at("served_by").as_string(), "shared_cache");
  EXPECT_EQ(second.at("result").at("checksum").as_string(),
            first.at("result").at("checksum").as_string());

  // The hit is visible in both accounting layers.
  const Value stats = parse_line(server.handle(
      "{\"id\":9,\"method\":\"stats\",\"params\":{\"session\":\"bob\"}}"));
  EXPECT_GT(stats.at("result").at("session").at("shared_hits").as_int(), 0);
  EXPECT_GT(stats.at("result").at("shared_cache").at("hits").as_int(), 0);
  EXPECT_GT(server.shared_cache_stats().hits, 0);

  // The per-phase pipeline breakdown is serialized alongside the cache
  // counters. alice computed, so her stats carry the evaluation.
  const Value alice = parse_line(server.handle(
      "{\"id\":10,\"method\":\"stats\",\"params\":{\"session\":\"alice\"}}"));
  const Value& session = alice.at("result").at("session");
  EXPECT_GE(session.at("simulate_ms").as_number() +
                session.at("metrics_ms").as_number(),
            0.0);
  EXPECT_GE(session.at("metric_partitions").as_int(), 1);
}

// ---------------------------------------------------------------------
// Concurrency: bit-identity, coalescing, graceful shutdown.

/// N client threads, each with its own session, drag the same slider
/// sequence with interleaved steps. Every response checksum must equal
/// the serial single-session reference, the coalescing invariant must
/// hold (exactly one "compute" per distinct binding, process-wide), and
/// the shared tier must show cross-session hits.
void run_concurrent_drag(int threads_knob) {
  dmv::par::ThreadScope scope(threads_knob);
  const std::vector<std::int64_t> values = {6, 7, 8, 9, 6, 8};
  const std::vector<std::string> reference = reference_checksums(values);
  const std::set<std::int64_t> distinct(values.begin(), values.end());

  ServerConfig config;
  config.session_defaults.prefetch = false;  // Exact compute accounting.
  Server server(config);
  constexpr int kClients = 8;
  for (int c = 0; c < kClients; ++c) {
    const Value opened = parse_line(
        server.handle(open_request("client" + std::to_string(c), "hdiff")));
    ASSERT_TRUE(opened.has("result"));
  }

  std::vector<std::vector<std::string>> checksums(kClients);
  std::atomic<int> computes{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const std::string session = "client" + std::to_string(c);
      for (const std::int64_t value : values) {
        const Value response =
            parse_line(server.handle(step_request(session, "K", value)));
        ASSERT_TRUE(response.has("result")) << dmv::json::dump(response);
        checksums[c].push_back(
            response.at("result").at("checksum").as_string());
        if (response.at("result").at("served_by").as_string() == "compute") {
          computes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  // Bit-identity: every client saw exactly the serial reference.
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(checksums[c], reference) << "client " << c;
  }
  // Coalescing invariant: one simulation per distinct binding — no
  // matter the interleaving, every other request was served by a cache
  // tier or waited on the leader's flight.
  EXPECT_EQ(computes.load(), static_cast<int>(distinct.size()));
  const dmv::serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.steps, static_cast<std::int64_t>(kClients * values.size()));
  EXPECT_LT(stats.coalesced, stats.steps);
  EXPECT_GT(server.shared_cache_stats().hits, 0);
}

TEST(ServeDeterminismTest, ConcurrentClientsBitIdenticalSerialPool) {
  run_concurrent_drag(1);
}

TEST(ServeDeterminismTest, ConcurrentClientsBitIdenticalParallelPool) {
  run_concurrent_drag(4);
}

TEST(ServeDeterminismTest, PoolBusyFallbackKeepsResultsIdentical) {
  // Two threads race whole parallel jobs; whichever finds the pool busy
  // degrades to serial inline and must produce the same sum.
  dmv::par::ThreadScope scope(4);
  const std::size_t n = 1 << 14;
  auto sum_squares = [&] {
    return dmv::par::parallel_reduce<std::int64_t>(
        n, 128, 0,
        [](std::size_t begin, std::size_t end) {
          std::int64_t sum = 0;
          for (std::size_t i = begin; i < end; ++i) {
            sum += static_cast<std::int64_t>(i * i);
          }
          return sum;
        },
        [](std::int64_t& into, std::int64_t part) { into += part; });
  };
  const std::int64_t expected = sum_squares();
  std::vector<std::int64_t> results(8, 0);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < results.size(); ++t) {
    threads.emplace_back([&, t] {
      for (int repeat = 0; repeat < 16; ++repeat) results[t] = sum_squares();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const std::int64_t result : results) EXPECT_EQ(result, expected);
}

TEST(ServeShutdownTest, GracefulWithInFlightRequests) {
  Server server;
  server.handle(open_request("a", "hdiff"));
  std::vector<std::string> responses(4);
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      responses[t] = server.handle(step_request("a", "K", 6 + t));
    });
  }
  server.shutdown();  // Must drain in-flight requests, then return.
  for (std::thread& client : clients) client.join();
  for (const std::string& line : responses) {
    const Value response = parse_line(line);
    // Every request either completed normally (admitted before the
    // shutdown) or was cleanly rejected — never dropped or corrupted.
    if (response.has("error")) {
      EXPECT_EQ(response.at("error").at("code").as_string(), "shutting_down");
    } else {
      EXPECT_TRUE(response.has("result"));
    }
  }
  EXPECT_TRUE(server.shutting_down());
  const Value rejected = parse_line(server.handle(step_request("a", "K", 20)));
  EXPECT_EQ(rejected.at("error").at("code").as_string(), "shutting_down");
}

// ---------------------------------------------------------------------
// The shared JSON module's writer (the parser is exercised by every
// protocol test and by the SDFG reader suite).

TEST(ServeJsonTest, DumpIsCanonicalAndRoundTrips) {
  Value object = Value::make_object();
  object["zeta"] = Value::of(std::int64_t{1} << 52);
  object["alpha"] = Value::of("line\nbreak \"quoted\"");
  object["mid"] = Value::make_array();
  object["mid"].push(Value::of(true));
  object["mid"].push(Value::null());
  object["mid"].push(Value::of(2.5));
  const std::string text = dmv::json::dump(object);
  // Keys sorted, integral doubles without fraction, escapes intact.
  EXPECT_EQ(text,
            "{\"alpha\":\"line\\nbreak \\\"quoted\\\"\","
            "\"mid\":[true,null,2.5],\"zeta\":4503599627370496}");
  const Value reparsed = dmv::json::parse(text);
  EXPECT_EQ(dmv::json::dump(reparsed), text);
  EXPECT_EQ(reparsed.at("zeta").as_int(), std::int64_t{1} << 52);
}

}  // namespace
