#include "dmv/workloads/workloads.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "dmv/exec/interpreter.hpp"
#include "dmv/ir/validate.hpp"
#include "dmv/sim/sim.hpp"

namespace dmv::workloads {
namespace {

TEST(Workloads, AllGraphsValidate) {
  EXPECT_NO_THROW(ir::validate_or_throw(outer_product()));
  EXPECT_NO_THROW(ir::validate_or_throw(matmul(true)));
  EXPECT_NO_THROW(ir::validate_or_throw(matmul(false)));
  EXPECT_NO_THROW(ir::validate_or_throw(conv2d()));
  for (auto variant : {HdiffVariant::Baseline, HdiffVariant::Reshaped,
                       HdiffVariant::Reordered, HdiffVariant::Padded}) {
    EXPECT_NO_THROW(ir::validate_or_throw(hdiff(variant)));
  }
  for (auto stage :
       {BertStage::Baseline, BertStage::Fused1, BertStage::Fused2}) {
    EXPECT_NO_THROW(ir::validate_or_throw(bert_encoder(stage)));
  }
}

TEST(Workloads, MatmulBLayoutToggle) {
  ir::Sdfg column = matmul(true);
  ir::Sdfg row = matmul(false);
  symbolic::SymbolMap env = matmul_fig5();
  EXPECT_EQ(column.array("B").strides[0].evaluate(env), 1);
  EXPECT_EQ(row.array("B").strides[1].evaluate(env), 1);
}

TEST(Workloads, Conv2dOutputShape) {
  ir::Sdfg sdfg = conv2d();
  symbolic::SymbolMap env = conv2d_fig4();
  const ir::DataDescriptor& out = sdfg.array("output");
  EXPECT_EQ(out.shape[0].evaluate(env), 2);
  EXPECT_EQ(out.shape[1].evaluate(env), 6);
  EXPECT_EQ(out.shape[2].evaluate(env), 6);
}

TEST(Workloads, HdiffVariantsComputeSameResult) {
  // Every tuning step is semantics-preserving (the guarantee the tool's
  // workflow relies on): identical logical outputs across all variants.
  symbolic::SymbolMap env{{"I", 5}, {"J", 6}, {"K", 3}};
  kernels::HdiffData data = kernels::make_hdiff_data(5, 6, 3);

  std::vector<double> reference;
  for (auto variant : {HdiffVariant::Baseline, HdiffVariant::Reshaped,
                       HdiffVariant::Reordered, HdiffVariant::Padded}) {
    ir::Sdfg sdfg = hdiff(variant);
    exec::Buffers buffers(sdfg, env);
    // in_field's logical layout differs after the reshape; fill through
    // canonical (i, j, k) coordinates.
    const auto& layout = buffers.layout("in_field");
    const bool reshaped = layout.shape[0] == 3;
    for (std::int64_t i = 0; i < 9; ++i) {
      for (std::int64_t j = 0; j < 10; ++j) {
        for (std::int64_t k = 0; k < 3; ++k) {
          const double value = data.in_field[(i * 10 + j) * 3 + k];
          if (reshaped) {
            buffers.at("in_field", std::vector<std::int64_t>{k, i, j}) =
                value;
          } else {
            buffers.at("in_field", std::vector<std::int64_t>{i, j, k}) =
                value;
          }
        }
      }
    }
    buffers.set_logical("coeff", data.coeff);
    exec::run(sdfg, env, buffers);
    std::vector<double> out = buffers.logical("out_field");
    if (reference.empty()) {
      reference = out;
    } else {
      EXPECT_EQ(out, reference);
    }
  }
}

TEST(Workloads, HdiffKernelsAgree) {
  kernels::HdiffData a = kernels::make_hdiff_data(12, 13, 7);
  kernels::HdiffData b = kernels::make_hdiff_data(12, 13, 7);
  kernels::HdiffData c = kernels::make_hdiff_data(12, 13, 7);
  kernels::hdiff_baseline(a);
  kernels::hdiff_fused(b);
  kernels::hdiff_tuned(c);
  for (std::size_t i = 0; i < a.out_field.size(); ++i) {
    EXPECT_NEAR(a.out_field[i], b.out_field[i], 1e-12);
    EXPECT_NEAR(a.out_field[i], c.out_field[i], 1e-12);
  }
}

TEST(Workloads, HdiffTunedPaddingVariants) {
  for (std::int64_t pad : {4, 8, 16}) {
    kernels::HdiffData reference = kernels::make_hdiff_data(6, 9, 4);
    kernels::HdiffData padded = kernels::make_hdiff_data(6, 9, 4);
    kernels::hdiff_baseline(reference);
    kernels::hdiff_tuned(padded, pad);
    for (std::size_t i = 0; i < reference.out_field.size(); ++i) {
      EXPECT_NEAR(reference.out_field[i], padded.out_field[i], 1e-12);
    }
  }
}

TEST(Workloads, HdiffIrMatchesKernel) {
  const std::int64_t I = 4, J = 5, K = 2;
  kernels::HdiffData data = kernels::make_hdiff_data(I, J, K);
  kernels::hdiff_baseline(data);

  ir::Sdfg sdfg = hdiff(HdiffVariant::Baseline);
  symbolic::SymbolMap env{{"I", I}, {"J", J}, {"K", K}};
  exec::Buffers buffers(sdfg, env);
  buffers.set_logical("in_field", data.in_field);
  buffers.set_logical("coeff", data.coeff);
  exec::run(sdfg, env, buffers);
  std::vector<double> out = buffers.logical("out_field");
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], data.out_field[i], 1e-12);
  }
}

TEST(Workloads, BertStagesShrinkTheGraph) {
  int previous = 1 << 20;
  for (auto stage :
       {BertStage::Baseline, BertStage::Fused1, BertStage::Fused2}) {
    ir::Sdfg sdfg = bert_encoder(stage);
    int maps = 0;
    for (const ir::Node& node : sdfg.states()[0].nodes()) {
      if (node.kind == ir::NodeKind::MapEntry) ++maps;
    }
    EXPECT_LT(maps, previous);
    previous = maps;
  }
}

TEST(Workloads, BertStagesComputeSameResult) {
  symbolic::SymbolMap env = bert_small();
  std::vector<double> reference;
  for (auto stage :
       {BertStage::Baseline, BertStage::Fused1, BertStage::Fused2}) {
    ir::Sdfg sdfg = bert_encoder(stage);
    exec::Buffers buffers(sdfg, env);
    for (const auto& [name, descriptor] : sdfg.arrays()) {
      if (descriptor.transient || name == "out") continue;
      std::vector<double> values(
          buffers.layout(name).total_elements());
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = 0.02 * std::sin(static_cast<double>(i) * 1.7 +
                                    static_cast<double>(name.size()));
      }
      buffers.set_logical(name, values);
    }
    exec::run(sdfg, env, buffers);
    std::vector<double> out = buffers.logical("out");
    if (reference.empty()) {
      reference = out;
    } else {
      EXPECT_EQ(out, reference) << "stage differs";
    }
  }
}

TEST(Workloads, BertKernelStagesAgree) {
  kernels::BertConfig config;
  config.B = 1;
  config.H = 2;
  config.SM = 12;
  config.I = 16;
  config.emb = 24;
  kernels::BertData a = kernels::make_bert_data(config);
  kernels::BertData b = kernels::make_bert_data(config);
  kernels::BertData c = kernels::make_bert_data(config);
  kernels::bert_baseline(a);
  kernels::bert_fused1(b);
  kernels::bert_fused2(c);
  for (std::size_t i = 0; i < a.out.size(); ++i) {
    EXPECT_NEAR(a.out[i], b.out[i], 2e-4) << "fused1 at " << i;
    EXPECT_NEAR(a.out[i], c.out[i], 2e-4) << "fused2 at " << i;
  }
}

TEST(Workloads, BertLargeParametersMatchPaper) {
  symbolic::SymbolMap env = bert_large();
  EXPECT_EQ(env["B"], 8);
  EXPECT_EQ(env["H"], 16);
  EXPECT_EQ(env["I"], 1024);
  EXPECT_EQ(env["SM"], 512);
  EXPECT_EQ(env["emb"], 4096);
  EXPECT_EQ(env["P"], 64);  // P = I / H.
}

TEST(Workloads, HdiffLocalIsScaledVersionOfFull) {
  symbolic::SymbolMap local = hdiff_local();
  symbolic::SymbolMap full = hdiff_full();
  EXPECT_EQ(full["I"] / local["I"], 32);
  EXPECT_EQ(full["J"] / local["J"], 32);
  EXPECT_EQ(full["K"] / local["K"], 32);
}

TEST(Workloads, HdiffStencilTouches13Points) {
  // Fig 8a: the hdiff iteration accesses 13 distinct in_field elements.
  ir::Sdfg sdfg = hdiff(HdiffVariant::Baseline);
  sim::AccessTrace trace = sim::simulate(sdfg, hdiff_local());
  const int in = trace.container_id("in_field");
  std::set<std::int64_t> first_iteration;
  for (const sim::AccessEvent& event : trace.events) {
    if (event.execution != 0 || event.container != in) continue;
    first_iteration.insert(event.flat);
  }
  EXPECT_EQ(first_iteration.size(), 13u);
}

TEST(Workloads, MakersAreDeterministic) {
  kernels::HdiffData a = kernels::make_hdiff_data(4, 4, 2);
  kernels::HdiffData b = kernels::make_hdiff_data(4, 4, 2);
  EXPECT_EQ(a.in_field, b.in_field);
  EXPECT_EQ(a.coeff, b.coeff);
  kernels::BertData x = kernels::make_bert_data({});
  kernels::BertData y = kernels::make_bert_data({});
  EXPECT_EQ(x.x, y.x);
}

}  // namespace
}  // namespace dmv::workloads
