#include "dmv/exec/interpreter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dmv/builder/program_builder.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::exec {
namespace {

using builder::ProgramBuilder;

TEST(Buffers, AllocationAndAccess) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N", "N"});
  ir::Sdfg sdfg = p.sdfg();
  Buffers buffers(sdfg, {{"N", 3}});
  EXPECT_EQ(buffers.raw("A").size(), 9u);
  const std::int64_t idx[] = {1, 2};
  buffers.at("A", idx) = 7.5;
  EXPECT_EQ(buffers.logical("A")[5], 7.5);
  EXPECT_THROW(buffers.raw("missing"), std::out_of_range);
  EXPECT_THROW(buffers.layout("missing"), std::out_of_range);
  const std::int64_t bad[] = {3, 0};
  EXPECT_THROW(buffers.at("A", bad), std::out_of_range);
}

TEST(Buffers, PaddedStridesAllocateHoles) {
  ProgramBuilder p("prog");
  p.array("A", {"4", "12"});
  p.sdfg().array("A").strides = {symbolic::Expr(16), symbolic::Expr(1)};
  ir::Sdfg sdfg = p.sdfg();
  Buffers buffers(sdfg, {});
  EXPECT_EQ(buffers.raw("A").size(), 3u * 16 + 12);
  // Logical view skips the holes.
  std::vector<double> values(48);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = i;
  buffers.set_logical("A", values);
  EXPECT_EQ(buffers.logical("A"), values);
  const std::int64_t idx[] = {1, 0};
  EXPECT_EQ(buffers.at("A", idx), 12.0);
  EXPECT_EQ(buffers.raw("A")[16], 12.0);
}

TEST(Buffers, SetLogicalSizeMismatch) {
  ProgramBuilder p("prog");
  p.array("A", {"4"});
  ir::Sdfg sdfg = p.sdfg();
  Buffers buffers(sdfg, {});
  EXPECT_THROW(buffers.set_logical("A", {1.0, 2.0}),
               std::invalid_argument);
}

TEST(Interpreter, OuterProductMatchesManual) {
  ir::Sdfg sdfg = workloads::outer_product();
  symbolic::SymbolMap env = workloads::outer_product_fig3();
  Buffers buffers(sdfg, env);
  buffers.set_logical("A", {1, 2, 3});
  buffers.set_logical("B", {10, 20, 30, 40});
  run(sdfg, env, buffers);
  std::vector<double> c = buffers.logical("C");
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(c[i * 4 + j], (i + 1) * 10.0 * (j + 1));
    }
  }
}

TEST(Interpreter, MatmulWithWcrSum) {
  ir::Sdfg sdfg = workloads::matmul();
  symbolic::SymbolMap env{{"M", 2}, {"K", 3}, {"N", 2}};
  Buffers buffers(sdfg, env);
  buffers.set_logical("A", {1, 2, 3, 4, 5, 6});
  buffers.set_logical("B", {1, 0, 0, 1, 1, 1});
  run(sdfg, env, buffers);
  std::vector<double> c = buffers.logical("C");
  // A = [[1,2,3],[4,5,6]], B = [[1,0],[0,1],[1,1]] -> C = [[4,5],[10,11]].
  EXPECT_EQ(c, (std::vector<double>{4, 5, 10, 11}));
}

TEST(Interpreter, ColumnMajorBGivesSameResult) {
  symbolic::SymbolMap env{{"M", 2}, {"K", 3}, {"N", 2}};
  auto run_matmul = [&](bool column_major) {
    ir::Sdfg sdfg = workloads::matmul(column_major);
    Buffers buffers(sdfg, env);
    buffers.set_logical("A", {1, 2, 3, 4, 5, 6});
    buffers.set_logical("B", {1, 0, 0, 1, 1, 1});
    run(sdfg, env, buffers);
    return buffers.logical("C");
  };
  EXPECT_EQ(run_matmul(true), run_matmul(false));
}

TEST(Interpreter, WcrMinMax) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.array("lo", {"1"});
  p.array("hi", {"1"});
  p.state("s");
  p.mapped_tasklet("minmax", {{"i", "0:N-1"}}, {{"v", "A", "i"}},
                   "a = v; b = v", {{"a", "lo", "0", ir::Wcr::Min},
                                    {"b", "hi", "0", ir::Wcr::Max}});
  ir::Sdfg sdfg = p.take();
  symbolic::SymbolMap env{{"N", 4}};
  Buffers buffers(sdfg, env);
  buffers.set_logical("A", {3, -7, 5, 2});
  run(sdfg, env, buffers);
  // Buffers start at zero, so min(-7, 0) and max(5, 0).
  EXPECT_EQ(buffers.logical("lo")[0], -7);
  EXPECT_EQ(buffers.logical("hi")[0], 5);
}

TEST(Interpreter, ChainedTaskletsPassWires) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.array("B", {"N"});
  p.state("s");
  builder::ChainStage s1{"sq", {{"v", "A", "i"}}, {}, "t = v * v", {}, {"t"}};
  builder::ChainStage s2{
      "inc", {}, {"t"}, "o = t + 1", {{"o", "B", "i"}}, {}};
  p.mapped_chain("fused", {{"i", "0:N-1"}}, {s1, s2});
  ir::Sdfg sdfg = p.take();
  symbolic::SymbolMap env{{"N", 3}};
  Buffers buffers(sdfg, env);
  buffers.set_logical("A", {2, 3, 4});
  run(sdfg, env, buffers);
  EXPECT_EQ(buffers.logical("B"), (std::vector<double>{5, 10, 17}));
}

TEST(Interpreter, SymbolsVisibleInTasklets) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.array("B", {"N"});
  p.state("s");
  // Reads both the map parameter i and the symbol N.
  p.mapped_tasklet("affine", {{"i", "0:N-1"}}, {{"v", "A", "i"}},
                   "o = v + i * N", {{"o", "B", "i"}});
  ir::Sdfg sdfg = p.take();
  symbolic::SymbolMap env{{"N", 4}};
  Buffers buffers(sdfg, env);
  buffers.set_logical("A", {1, 1, 1, 1});
  run(sdfg, env, buffers);
  EXPECT_EQ(buffers.logical("B"), (std::vector<double>{1, 5, 9, 13}));
}

TEST(Interpreter, CopyEdges) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N", "N"});
  p.array("B", {"N", "N"});
  p.state("s");
  // Copy A's first row into B's first column.
  p.copy("A", "0, 0:N-1", "B", "0:N-1, 0");
  ir::Sdfg sdfg = p.take();
  symbolic::SymbolMap env{{"N", 3}};
  Buffers buffers(sdfg, env);
  buffers.set_logical("A", {1, 2, 3, 4, 5, 6, 7, 8, 9});
  run(sdfg, env, buffers);
  std::vector<double> b = buffers.logical("B");
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[3], 2);
  EXPECT_EQ(b[6], 3);
}

TEST(Interpreter, MultiStateExecutesInOrder) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.transient("T", {"N"});
  p.array("B", {"N"});
  p.state("first");
  p.mapped_tasklet("inc", {{"i", "0:N-1"}}, {{"v", "A", "i"}}, "o = v + 1",
                   {{"o", "T", "i"}});
  p.state("second");
  p.mapped_tasklet("dbl", {{"i", "0:N-1"}}, {{"v", "T", "i"}}, "o = v * 2",
                   {{"o", "B", "i"}});
  ir::Sdfg sdfg = p.take();
  symbolic::SymbolMap env{{"N", 3}};
  Buffers buffers(sdfg, env);
  buffers.set_logical("A", {1, 2, 3});
  run(sdfg, env, buffers);
  EXPECT_EQ(buffers.logical("B"), (std::vector<double>{4, 6, 8}));
}

TEST(Interpreter, RejectsRangeMemletOnTasklet) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.array("B", {"N"});
  p.state("s");
  p.mapped_tasklet("bad", {{"i", "0:N-1"}}, {{"v", "A", "0:N-1"}}, "o = v",
                   {{"o", "B", "i"}});
  ir::Sdfg sdfg = p.take();
  Buffers buffers(sdfg, {{"N", 3}});
  EXPECT_THROW(run(sdfg, {{"N", 3}}, buffers), std::invalid_argument);
}

TEST(Interpreter, MissingConnectorThrows) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.array("B", {"N"});
  p.state("s");
  // Tasklet writes "o" but the output edge expects "wrong".
  p.mapped_tasklet("typo", {{"i", "0:N-1"}}, {{"v", "A", "i"}}, "o = v",
                   {{"wrong", "B", "i"}});
  ir::Sdfg sdfg = p.take();
  Buffers buffers(sdfg, {{"N", 3}});
  EXPECT_THROW(run(sdfg, {{"N", 3}}, buffers), std::logic_error);
}

TEST(Interpreter, HdiffMatchesNativeKernel) {
  // The IR stencil and the native fused kernel implement the same math.
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  const std::int64_t I = 6, J = 7, K = 3;
  symbolic::SymbolMap env{{"I", I}, {"J", J}, {"K", K}};

  workloads::kernels::HdiffData data =
      workloads::kernels::make_hdiff_data(I, J, K);
  workloads::kernels::hdiff_fused(data);

  Buffers buffers(sdfg, env);
  buffers.set_logical("in_field", data.in_field);
  buffers.set_logical("coeff", data.coeff);
  run(sdfg, env, buffers);
  std::vector<double> out = buffers.logical("out_field");
  ASSERT_EQ(out.size(), data.out_field.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], data.out_field[i], 1e-12) << "at " << i;
  }
}

}  // namespace
}  // namespace dmv::exec
