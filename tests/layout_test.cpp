#include "dmv/layout/layout.hpp"

#include <gtest/gtest.h>

#include "dmv/symbolic/parser.hpp"

namespace dmv::layout {
namespace {

ConcreteLayout simple_2d(std::int64_t rows, std::int64_t cols,
                         int element_size = 8) {
  ConcreteLayout layout;
  layout.name = "A";
  layout.shape = {rows, cols};
  layout.strides = {cols, 1};
  layout.element_size = element_size;
  return layout;
}

TEST(ConcreteLayout, Sizes) {
  ConcreteLayout layout = simple_2d(3, 4);
  EXPECT_EQ(layout.total_elements(), 12);
  EXPECT_EQ(layout.allocated_elements(), 12);
  EXPECT_EQ(layout.allocated_bytes(), 96);
}

TEST(ConcreteLayout, PaddedAllocation) {
  ConcreteLayout layout = simple_2d(3, 12);
  layout.strides = {16, 1};  // Rows padded to 16 elements.
  EXPECT_EQ(layout.total_elements(), 36);
  EXPECT_EQ(layout.allocated_elements(), 2 * 16 + 11 + 1);
}

TEST(ConcreteLayout, Addressing) {
  ConcreteLayout layout = simple_2d(3, 4, 4);
  layout.base_address = 1024;
  const std::int64_t idx[] = {2, 3};
  EXPECT_EQ(layout.element_offset(idx), 11);
  EXPECT_EQ(layout.byte_address(idx), 1024 + 44);
}

TEST(ConcreteLayout, ColumnMajorAddressing) {
  ConcreteLayout layout = simple_2d(3, 4);
  layout.strides = {1, 3};  // Column-major.
  const std::int64_t idx[] = {2, 3};
  EXPECT_EQ(layout.element_offset(idx), 2 + 9);
}

TEST(ConcreteLayout, FlatRoundTrip) {
  ConcreteLayout layout;
  layout.shape = {2, 3, 4};
  layout.strides = {12, 4, 1};
  for (std::int64_t flat = 0; flat < layout.total_elements(); ++flat) {
    const Index indices = layout.unflatten(flat);
    EXPECT_EQ(layout.flat_index(indices), flat);
    EXPECT_TRUE(layout.in_bounds(indices));
  }
}

TEST(ConcreteLayout, InBounds) {
  ConcreteLayout layout = simple_2d(3, 4);
  EXPECT_TRUE(layout.in_bounds(std::vector<std::int64_t>{0, 0}));
  EXPECT_TRUE(layout.in_bounds(std::vector<std::int64_t>{2, 3}));
  EXPECT_FALSE(layout.in_bounds(std::vector<std::int64_t>{3, 0}));
  EXPECT_FALSE(layout.in_bounds(std::vector<std::int64_t>{0, -1}));
  EXPECT_FALSE(layout.in_bounds(std::vector<std::int64_t>{0}));
}

TEST(ConcreteLayout, FromDescriptor) {
  auto descriptor = ir::DataDescriptor::array(
      "in_field", {symbolic::parse("I + 4"), symbolic::parse("K")});
  ConcreteLayout layout =
      ConcreteLayout::from(descriptor, {{"I", 8}, {"K", 5}});
  EXPECT_EQ(layout.shape, (std::vector<std::int64_t>{12, 5}));
  EXPECT_EQ(layout.strides, (std::vector<std::int64_t>{5, 1}));
}

TEST(ConcreteLayout, FromDescriptorRejectsNonPositiveExtent) {
  auto descriptor =
      ir::DataDescriptor::array("A", {symbolic::parse("N - 4")});
  EXPECT_THROW(ConcreteLayout::from(descriptor, {{"N", 4}}),
               std::invalid_argument);
}

TEST(AddressSpace, AlignsAndSeparates) {
  AddressSpace space(64);
  ConcreteLayout a = simple_2d(2, 3);  // 48 bytes.
  ConcreteLayout b = simple_2d(2, 3);
  space.place(a);
  space.place(b);
  EXPECT_EQ(a.base_address, 0);
  EXPECT_EQ(b.base_address, 64);  // Next 64-byte boundary after 48.
  EXPECT_EQ(space.bytes_used(), 64 + 48);
}

TEST(AddressSpace, RejectsBadAlignment) {
  EXPECT_THROW(AddressSpace(0), std::invalid_argument);
}

TEST(CacheLine, LineOf) {
  ConcreteLayout layout = simple_2d(2, 10, 8);
  const std::int64_t first[] = {0, 0};
  const std::int64_t seventh[] = {0, 7};
  const std::int64_t ninth[] = {0, 8};
  EXPECT_EQ(cache_line_of(layout, first, 64), 0);
  EXPECT_EQ(cache_line_of(layout, seventh, 64), 0);
  EXPECT_EQ(cache_line_of(layout, ninth, 64), 1);
  EXPECT_THROW(cache_line_of(layout, first, 0), std::invalid_argument);
}

TEST(CacheLine, ElementsSharingLine) {
  // 10-wide rows of 8-byte elements, 64-byte lines: line 1 holds
  // elements 8..15 = [0,8], [0,9], [1,0] .. [1,5].
  ConcreteLayout layout = simple_2d(2, 10, 8);
  const std::int64_t probe[] = {0, 9};
  std::vector<Index> sharing = elements_sharing_line(layout, probe, 64);
  ASSERT_EQ(sharing.size(), 8u);
  EXPECT_EQ(sharing.front(), (Index{0, 8}));
  EXPECT_EQ(sharing.back(), (Index{1, 5}));
}

TEST(CacheLine, RowMajorVsColumnMajorReveal) {
  // The Fig 5a reveal: for a row-major container, the line mates of
  // [0, 0] vary in the LAST index; for column-major, in the FIRST.
  ConcreteLayout row = simple_2d(9, 10, 4);
  ConcreteLayout col = simple_2d(10, 15, 4);
  col.strides = {1, 10};
  const std::int64_t origin[] = {0, 0};
  std::vector<Index> row_mates = elements_sharing_line(row, origin, 64);
  std::vector<Index> col_mates = elements_sharing_line(col, origin, 64);
  ASSERT_GT(row_mates.size(), 1u);
  ASSERT_GT(col_mates.size(), 1u);
  EXPECT_EQ(row_mates[1], (Index{0, 1}));
  EXPECT_EQ(col_mates[1], (Index{1, 0}));
}

TEST(CacheLine, LinesSpanned) {
  ConcreteLayout tight = simple_2d(4, 8, 8);  // 4 rows x 64B = 4 lines.
  EXPECT_EQ(lines_spanned(tight, 64), 4);
  ConcreteLayout padded = simple_2d(4, 6, 8);
  padded.strides = {8, 1};  // 6 used of 8 per row.
  EXPECT_EQ(lines_spanned(padded, 64), 4);  // Padding holes don't count...
}

TEST(CacheLine, WraparoundDetection) {
  // Rows of 12 8-byte elements (96 B): every other row starts mid-line.
  ConcreteLayout unpadded = simple_2d(4, 12, 8);
  std::vector<Index> wrapped = rows_with_line_wraparound(unpadded, 1, 64);
  EXPECT_FALSE(wrapped.empty());

  ConcreteLayout padded = simple_2d(4, 12, 8);
  padded.strides = {16, 1};  // 16 * 8 = 128 B: line aligned.
  EXPECT_TRUE(rows_with_line_wraparound(padded, 1, 64).empty());
}

TEST(CacheLine, WraparoundArgChecks) {
  ConcreteLayout layout = simple_2d(4, 12, 8);
  EXPECT_THROW(rows_with_line_wraparound(layout, 5, 64),
               std::invalid_argument);
}

TEST(CacheLine, Wraparound3D) {
  // [K, I, J] with J = 12 doubles: wraparound along the last dimension.
  ConcreteLayout layout;
  layout.shape = {2, 3, 12};
  layout.strides = {36, 12, 1};
  layout.element_size = 8;
  EXPECT_FALSE(rows_with_line_wraparound(layout, 2, 64).empty());
  layout.strides = {48, 16, 1};
  EXPECT_TRUE(rows_with_line_wraparound(layout, 2, 64).empty());
}

}  // namespace
}  // namespace dmv::layout
