#include <gtest/gtest.h>

#include "dmv/ir/data.hpp"
#include "dmv/ir/graph.hpp"
#include "dmv/ir/memlet.hpp"
#include "dmv/ir/sdfg.hpp"
#include "dmv/ir/serialize.hpp"
#include "dmv/ir/validate.hpp"
#include "dmv/symbolic/parser.hpp"

namespace dmv::ir {
namespace {

using symbolic::Expr;

TEST(DataDescriptor, RowMajorStrides) {
  auto d = DataDescriptor::array("A", {Expr(3), Expr(4), Expr(5)});
  EXPECT_EQ(d.strides[0].constant_value(), 20);
  EXPECT_EQ(d.strides[1].constant_value(), 5);
  EXPECT_EQ(d.strides[2].constant_value(), 1);
  EXPECT_EQ(d.total_elements().constant_value(), 60);
  EXPECT_EQ(d.logical_bytes().constant_value(), 480);
  EXPECT_EQ(d.allocated_elements().constant_value(), 60);
}

TEST(DataDescriptor, ColumnMajorStrides) {
  std::vector<Expr> shape{Expr(3), Expr(4)};
  auto strides = DataDescriptor::column_major_strides(shape);
  EXPECT_EQ(strides[0].constant_value(), 1);
  EXPECT_EQ(strides[1].constant_value(), 3);
}

TEST(DataDescriptor, SymbolicShapes) {
  auto d = DataDescriptor::array(
      "in_field", {symbolic::parse("I + 4"), symbolic::parse("J + 4"),
                   symbolic::parse("K")});
  symbolic::SymbolMap env{{"I", 8}, {"J", 8}, {"K", 5}};
  EXPECT_EQ(d.total_elements().evaluate(env), 12 * 12 * 5);
  EXPECT_EQ(d.strides[0].evaluate(env), 60);
}

TEST(DataDescriptor, PaddedAllocationExceedsLogical) {
  auto d = DataDescriptor::array("A", {Expr(4), Expr(12)});
  d.strides = {Expr(16), Expr(1)};  // Rows padded 12 -> 16.
  EXPECT_EQ(d.total_elements().constant_value(), 48);
  EXPECT_EQ(d.allocated_elements().constant_value(), 3 * 16 + 11 + 1);
}

TEST(DataDescriptor, ElementOffset) {
  auto d = DataDescriptor::array("A", {Expr(3), Expr(4)});
  EXPECT_EQ(d.element_offset({Expr(2), Expr(3)}).constant_value(), 11);
  EXPECT_THROW(d.element_offset({Expr(1)}), std::invalid_argument);
}

TEST(DataDescriptor, Scalar) {
  auto s = DataDescriptor::scalar("tmp");
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.total_elements().constant_value(), 1);
  EXPECT_TRUE(s.transient);
}

TEST(Range, SizeAndSingleElement) {
  Range r{symbolic::parse("0"), symbolic::parse("N-1"), Expr(1)};
  EXPECT_EQ(r.size().evaluate({{"N", 7}}), 7);
  EXPECT_FALSE(r.is_single_element());
  EXPECT_TRUE(Range::index(symbolic::parse("i+1")).is_single_element());
  Range stepped{Expr(0), Expr(9), Expr(2)};
  EXPECT_EQ(stepped.size().constant_value(), 5);
}

TEST(Subset, ParseForms) {
  Subset s = Subset::parse("i, 0:N-1, 2*j+1, 0:9:3");
  ASSERT_EQ(s.rank(), 4);
  EXPECT_TRUE(s.ranges[0].is_single_element());
  EXPECT_EQ(s.ranges[1].size().evaluate({{"N", 4}}), 4);
  EXPECT_EQ(s.ranges[3].size().constant_value(), 4);
  EXPECT_EQ(s.num_elements().evaluate({{"N", 4}}), 16);
}

TEST(Subset, ParseHandlesNestedParens) {
  Subset s = Subset::parse("min(i, j), (a+b):(a+b+3)");
  ASSERT_EQ(s.rank(), 2);
  EXPECT_EQ(s.ranges[1].size().constant_value(), 4);
}

TEST(Subset, ParseErrors) {
  EXPECT_THROW(Subset::parse("0:1:2:3"), std::invalid_argument);
}

TEST(Subset, SubstituteBindsSymbols) {
  Subset s = Subset::parse("i, 0:N-1").substitute({{"i", 2}, {"N", 5}});
  EXPECT_EQ(s.to_string(), "2, 0:4");
}

TEST(Memlet, VolumeDefaultsToSubset) {
  Memlet m = Memlet::simple("A", "0:N-1, 0:M-1");
  EXPECT_EQ(m.effective_volume().evaluate({{"N", 3}, {"M", 4}}), 12);
  m.volume = symbolic::parse("N");
  EXPECT_EQ(m.effective_volume().evaluate({{"N", 3}, {"M", 4}}), 3);
}

TEST(Memlet, ToString) {
  Memlet m = Memlet::simple("A", "i, j", Wcr::Sum);
  EXPECT_EQ(m.to_string(), "A[i, j] (wcr: sum)");
  EXPECT_EQ(Memlet::none().to_string(), "(empty)");
}

State simple_state() {
  State state("s");
  NodeId a = state.add_access("A");
  auto [entry, exit] = state.add_map(
      MapInfo{"m", {"i"}, {Range{Expr(0), symbolic::parse("N-1"), Expr(1)}}});
  NodeId t = state.add_tasklet("t", "o = v * 2", entry);
  NodeId b = state.add_access("B");
  state.add_edge(a, entry, Memlet::simple("A", "0:N-1"), "", "IN_A");
  state.add_edge(entry, t, Memlet::simple("A", "i"), "OUT_A", "v");
  state.add_edge(t, exit, Memlet::simple("B", "i"), "o", "IN_B");
  state.add_edge(exit, b, Memlet::simple("B", "0:N-1"), "OUT_B", "");
  return state;
}

TEST(State, TopologicalOrder) {
  State state = simple_state();
  std::vector<NodeId> order = state.topological_order();
  ASSERT_EQ(order.size(), state.num_nodes());
  std::vector<int> position(state.num_nodes());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (const Edge& edge : state.edges()) {
    EXPECT_LT(position[edge.src], position[edge.dst]);
  }
}

TEST(State, CycleDetection) {
  State state("s");
  NodeId t1 = state.add_tasklet("a", "o = v");
  NodeId t2 = state.add_tasklet("b", "o = v");
  state.add_edge(t1, t2, Memlet::none(), "o", "v");
  state.add_edge(t2, t1, Memlet::none(), "o", "v");
  EXPECT_THROW(state.topological_order(), std::logic_error);
}

TEST(State, ScopeQueries) {
  State state = simple_state();
  // Node 1 is the entry, node 3 the tasklet.
  const NodeId entry = 1, tasklet = 3;
  EXPECT_EQ(state.node(tasklet).scope_parent, entry);
  EXPECT_EQ(state.scope_depth(tasklet), 1);
  auto children = state.scope_children(entry);
  // Tasklet and map exit live in the entry's scope.
  EXPECT_EQ(children.size(), 2u);
  EXPECT_EQ(state.scope_chain(tasklet), std::vector<NodeId>{entry});
}

TEST(State, InOutEdges) {
  State state = simple_state();
  EXPECT_EQ(state.out_edges(0).size(), 1u);
  EXPECT_EQ(state.in_edges(1).size(), 1u);
  EXPECT_EQ(state.in_edges(0).size(), 0u);
}

TEST(State, EraseNodesCompactsAndRemaps) {
  State state = simple_state();
  NodeId extra = state.add_access("C");
  const std::size_t nodes_before = state.num_nodes();
  auto remap = state.erase_nodes({0});
  EXPECT_EQ(state.num_nodes(), nodes_before - 1);
  EXPECT_EQ(remap[0], kNoNode);
  // The edge from the erased access disappeared.
  for (const Edge& edge : state.edges()) {
    EXPECT_LT(edge.src, static_cast<NodeId>(state.num_nodes()));
    EXPECT_LT(edge.dst, static_cast<NodeId>(state.num_nodes()));
  }
  // Map pairing survives the remap.
  for (const Node& node : state.nodes()) {
    if (node.kind == NodeKind::MapEntry) {
      EXPECT_EQ(state.node(node.paired).paired, node.id);
    }
  }
  EXPECT_EQ(state.node(remap[extra]).data, "C");
}

TEST(State, AddEdgeRangeChecks) {
  State state("s");
  EXPECT_THROW(state.add_edge(0, 1, Memlet::none()), std::out_of_range);
}

Sdfg valid_sdfg() {
  Sdfg sdfg("prog");
  sdfg.add_symbol("N");
  sdfg.add_array(DataDescriptor::array("A", {symbolic::parse("N")}));
  sdfg.add_array(DataDescriptor::array("B", {symbolic::parse("N")}));
  State& state = sdfg.add_state("s");
  NodeId a = state.add_access("A");
  auto [entry, exit] = state.add_map(
      MapInfo{"m", {"i"}, {Range{Expr(0), symbolic::parse("N-1"), Expr(1)}}});
  NodeId t = state.add_tasklet("t", "o = v * 2", entry);
  NodeId b = state.add_access("B");
  state.add_edge(a, entry, Memlet::simple("A", "0:N-1"), "", "IN_A");
  state.add_edge(entry, t, Memlet::simple("A", "i"), "OUT_A", "v");
  state.add_edge(t, exit, Memlet::simple("B", "i"), "o", "IN_B");
  state.add_edge(exit, b, Memlet::simple("B", "0:N-1"), "OUT_B", "");
  return sdfg;
}

TEST(Sdfg, ArrayManagement) {
  Sdfg sdfg("p");
  sdfg.add_array(DataDescriptor::array("A", {Expr(4)}));
  EXPECT_TRUE(sdfg.has_array("A"));
  EXPECT_THROW(sdfg.add_array(DataDescriptor::array("A", {Expr(4)})),
               std::invalid_argument);
  EXPECT_THROW(sdfg.array("missing"), std::out_of_range);
  sdfg.remove_array("A");
  EXPECT_FALSE(sdfg.has_array("A"));
  EXPECT_THROW(sdfg.remove_array("A"), std::out_of_range);
}

TEST(Validate, AcceptsWellFormed) {
  EXPECT_TRUE(validate(valid_sdfg()).empty());
  EXPECT_NO_THROW(validate_or_throw(valid_sdfg()));
}

TEST(Validate, RejectsUndeclaredContainer) {
  Sdfg sdfg("p");
  State& state = sdfg.add_state("s");
  state.add_access("ghost");
  auto issues = validate(sdfg);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("ghost"), std::string::npos);
  EXPECT_THROW(validate_or_throw(sdfg), std::runtime_error);
}

TEST(Validate, RejectsRankMismatch) {
  Sdfg sdfg = valid_sdfg();
  State& state = sdfg.states()[0];
  // A 2-D subset over the 1-D array A.
  state.add_edge(0, 0, Memlet::simple("A", "0:1, 0:1"));
  EXPECT_FALSE(validate(sdfg).empty());
}

TEST(Validate, RejectsScopeCrossingEdge) {
  Sdfg sdfg = valid_sdfg();
  State& state = sdfg.states()[0];
  // Access node (top level) directly into the tasklet (map scope).
  state.add_edge(0, 3, Memlet::simple("A", "0"));
  auto issues = validate(sdfg);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("scope"), std::string::npos);
}

TEST(Validate, RejectsEmptyTasklet) {
  Sdfg sdfg("p");
  State& state = sdfg.add_state("s");
  state.add_tasklet("empty", TaskletAst{});
  EXPECT_FALSE(validate(sdfg).empty());
}

TEST(Validate, RejectsParamlessMap) {
  Sdfg sdfg("p");
  State& state = sdfg.add_state("s");
  state.add_map(MapInfo{"m", {}, {}});
  EXPECT_FALSE(validate(sdfg).empty());
}

TEST(Validate, RejectsBadElementSize) {
  Sdfg sdfg("p");
  auto d = DataDescriptor::array("A", {Expr(4)});
  d.element_size = 0;
  sdfg.add_array(std::move(d));
  EXPECT_FALSE(validate(sdfg).empty());
}

TEST(Serialize, JsonContainsStructure) {
  std::string json = to_json(valid_sdfg());
  EXPECT_NE(json.find("\"name\": \"prog\""), std::string::npos);
  EXPECT_NE(json.find("\"symbols\": [\"N\"]"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"map_entry\""), std::string::npos);
  EXPECT_EQ(json.find("\"wcr\""), std::string::npos) << "no wcr expected";
}

TEST(Serialize, JsonEscapesQuotes) {
  Sdfg sdfg("has\"quote");
  EXPECT_NE(to_json(sdfg).find("has\\\"quote"), std::string::npos);
}

TEST(Serialize, DotContainsShapes) {
  Sdfg sdfg = valid_sdfg();
  std::string dot = to_dot(sdfg.states()[0]);
  EXPECT_NE(dot.find("trapezium"), std::string::npos);
  EXPECT_NE(dot.find("ellipse"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace
}  // namespace dmv::ir
