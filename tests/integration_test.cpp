// End-to-end tests of the paper's two analysis workflows:
//   §VI-A — global view on BERT: heatmap -> bottleneck edges -> fusion ->
//           re-analysis shows less data movement.
//   §VI-B — local view on hdiff: simulate -> stack distances -> misses ->
//           each tuning step improves the metrics that drove it.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "dmv/analysis/analysis.hpp"
#include "dmv/ir/serialize.hpp"
#include "dmv/ir/validate.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/transforms/transforms.hpp"
#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv {
namespace {

TEST(BertGlobalWorkflow, FusionReducesMovementAndLowIntensityMaps) {
  const symbolic::SymbolMap params = workloads::bert_large();

  double previous_volume = std::numeric_limits<double>::max();
  int previous_low_intensity = 1 << 20;
  for (auto stage : {workloads::BertStage::Baseline,
                     workloads::BertStage::Fused1,
                     workloads::BertStage::Fused2}) {
    ir::Sdfg sdfg = workloads::bert_encoder(stage);
    const double volume = static_cast<double>(
        analysis::total_movement_bytes(sdfg).evaluate(params));
    EXPECT_LT(volume, previous_volume);
    previous_volume = volume;

    // Fig 6 center/right: the count of low-arithmetic-intensity maps
    // (the green nodes the median-centered overlay highlights) drops.
    int low_intensity = 0;
    for (const analysis::MapIntensity& intensity :
         analysis::map_intensities(sdfg, params)) {
      if (intensity.intensity < 0.25) ++low_intensity;
    }
    EXPECT_LE(low_intensity, previous_low_intensity);
    previous_low_intensity = low_intensity;
  }
}

TEST(BertGlobalWorkflow, HottestEdgesAreTheFusedOnes) {
  // The engineer clicks the red edges; those edges reference the
  // softmax-pipeline transients that the first fusion set removes.
  ir::Sdfg baseline = workloads::bert_encoder(workloads::BertStage::Baseline);
  auto ranked =
      analysis::rank_edges_by_volume(baseline, workloads::bert_large());
  ASSERT_GE(ranked.size(), 20u);
  std::set<std::string> hot_data;
  for (std::size_t i = 0; i < 20; ++i) hot_data.insert(ranked[i].data);
  // The 4-D attention intermediates dominate the logical traffic.
  bool found_attention_intermediate = false;
  for (const std::string& name : {"S", "Ss", "D", "E", "Pattn"}) {
    if (hot_data.contains(name)) found_attention_intermediate = true;
  }
  EXPECT_TRUE(found_attention_intermediate);
}

TEST(BertGlobalWorkflow, FusedStagesDropTheFusedTransients) {
  ir::Sdfg fused = workloads::bert_encoder(workloads::BertStage::Fused2);
  EXPECT_FALSE(fused.has_array("D"));
  EXPECT_FALSE(fused.has_array("Fb"));
  EXPECT_FALSE(fused.has_array("F2b"));
  // Non-fusible intermediates remain.
  EXPECT_TRUE(fused.has_array("S"));
  EXPECT_TRUE(fused.has_array("E"));
}

TEST(BertGlobalWorkflow, RenderAllStages) {
  // The Fig 6 panels render without error and shrink with fusion.
  std::size_t previous_size = std::numeric_limits<std::size_t>::max();
  for (auto stage : {workloads::BertStage::Baseline,
                     workloads::BertStage::Fused2}) {
    ir::Sdfg sdfg = workloads::bert_encoder(stage);
    auto volumes = analysis::edge_volumes(sdfg);
    std::vector<double> values;
    for (const auto& volume : volumes) {
      values.push_back(static_cast<double>(
          volume.bytes.evaluate(workloads::bert_large())));
    }
    viz::HeatmapScale scale =
        viz::HeatmapScale::fit(values, viz::ScalingPolicy::MeanCentered);
    viz::GraphRenderOptions options;
    for (std::size_t i = 0; i < volumes.size(); ++i) {
      options.edge_heat[volumes[i].ref.edge_index] =
          scale.normalize(values[i]);
    }
    std::string svg = render_state_svg(sdfg.states()[0], options);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    EXPECT_LT(svg.size(), previous_size);
    previous_size = svg.size();
  }
}

TEST(HdiffLocalWorkflow, EachTuningStepReducesMisses) {
  // Fig 7: cache misses and physical movement drop with the reshape and
  // the loop reorder (threshold: 8 lines = a scaled L1).
  const symbolic::SymbolMap params = workloads::hdiff_local();
  std::int64_t previous_misses = std::numeric_limits<std::int64_t>::max();
  std::int64_t previous_bytes = std::numeric_limits<std::int64_t>::max();
  for (auto variant :
       {workloads::HdiffVariant::Baseline, workloads::HdiffVariant::Reshaped,
        workloads::HdiffVariant::Reordered}) {
    ir::Sdfg sdfg = workloads::hdiff(variant);
    sim::AccessTrace trace = sim::simulate(sdfg, params);
    sim::StackDistanceResult distances = sim::stack_distances(trace, 64);
    sim::MissReport report = sim::classify_misses(trace, distances, 8);
    sim::MovementEstimate movement =
        sim::physical_movement(trace, report, 64);
    EXPECT_LT(report.total.misses(), previous_misses);
    EXPECT_LT(movement.total_bytes, previous_bytes);
    previous_misses = report.total.misses();
    previous_bytes = movement.total_bytes;
  }
}

TEST(HdiffLocalWorkflow, ReshapeNearlyHalvesInFieldTraffic) {
  // §VI-B: "almost halves the amount of data being requested from main
  // memory for in_field".
  const symbolic::SymbolMap params = workloads::hdiff_local();
  auto in_field_misses = [&](workloads::HdiffVariant variant) {
    ir::Sdfg sdfg = workloads::hdiff(variant);
    sim::AccessTrace trace = sim::simulate(sdfg, params);
    sim::StackDistanceResult distances = sim::stack_distances(trace, 64);
    sim::MissReport report = sim::classify_misses(trace, distances, 8);
    return report.per_container[trace.container_id("in_field")].misses();
  };
  const std::int64_t before =
      in_field_misses(workloads::HdiffVariant::Baseline);
  const std::int64_t after =
      in_field_misses(workloads::HdiffVariant::Reshaped);
  EXPECT_LT(after, before);
  EXPECT_NEAR(static_cast<double>(after) / static_cast<double>(before),
              0.5, 0.2);
}

TEST(HdiffLocalWorkflow, PaddingAlignsRowsAndImprovesUtilization) {
  // Fig 8c: before padding some rows wrap across cache lines; after,
  // none do, and same-iteration line utilization improves.
  const symbolic::SymbolMap params = workloads::hdiff_local();

  ir::Sdfg unpadded = workloads::hdiff(workloads::HdiffVariant::Reordered);
  ir::Sdfg padded = workloads::hdiff(workloads::HdiffVariant::Padded);

  layout::ConcreteLayout unpadded_layout =
      layout::ConcreteLayout::from(unpadded.array("in_field"), params);
  layout::ConcreteLayout padded_layout =
      layout::ConcreteLayout::from(padded.array("in_field"), params);
  EXPECT_FALSE(
      layout::rows_with_line_wraparound(unpadded_layout, 2, 64).empty());
  EXPECT_TRUE(
      layout::rows_with_line_wraparound(padded_layout, 2, 64).empty());

  auto utilization = [&](ir::Sdfg& sdfg) {
    sim::AccessTrace trace = sim::simulate(sdfg, params);
    return sim::iteration_line_stats(trace,
                                     trace.container_id("in_field"), 64)
        .mean_line_utilization;
  };
  EXPECT_GT(utilization(padded), utilization(unpadded));
}

TEST(HdiffLocalWorkflow, ScalingAnalysisFindsAllThreeParameters) {
  // §IV-D on hdiff: movement is linear in each of I, J, K.
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  auto scaling =
      analysis::movement_scaling(sdfg, workloads::hdiff_local());
  ASSERT_EQ(scaling.size(), 3u);
  for (const analysis::SymbolScaling& s : scaling) {
    EXPECT_NEAR(s.exponent, 1.0, 0.25) << s.symbol;
  }
}

TEST(CacheModelValidation, FullyAssociativePredictionTracksSetAssociative) {
  // §V-F: McKinley&Temam / Beyls&D'Hollander — conflict misses are a
  // minority, so the fully-associative stack-distance prediction is a
  // good estimate for low-associativity caches.
  for (auto variant : {workloads::HdiffVariant::Baseline,
                       workloads::HdiffVariant::Reordered}) {
    ir::Sdfg sdfg = workloads::hdiff(variant);
    sim::AccessTrace trace = sim::simulate(sdfg, workloads::hdiff_local());
    sim::StackDistanceResult distances = sim::stack_distances(trace, 64);

    const std::int64_t lines = 16;
    sim::MissReport predicted =
        sim::classify_misses(trace, distances, lines);
    for (int ways : {4, 8}) {
      sim::CacheConfig config{64, lines * 64, ways};
      sim::CacheSimResult truth = sim::simulate_cache(trace, config);
      const double error =
          std::abs(static_cast<double>(predicted.total.misses()) -
                   static_cast<double>(truth.total.misses())) /
          static_cast<double>(truth.total.misses());
      EXPECT_LT(error, 0.35) << "variant/ways " << ways;
    }
  }
}

TEST(FullPipeline, SerializeAnalyzeRenderHdiff) {
  // One pass through everything a session would do, end to end.
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  ir::validate_or_throw(sdfg);
  EXPECT_GT(ir::to_json(sdfg).size(), 100u);
  EXPECT_GT(viz::outline(sdfg).size(), 10u);

  sim::AccessTrace trace = sim::simulate(sdfg, workloads::hdiff_local());
  sim::AccessCounts counts = sim::count_accesses(trace);
  const int in = trace.container_id("in_field");

  // Flattened-time heatmap (Fig 4b style) on in_field.
  std::vector<std::int64_t> totals = counts.total(in);
  std::vector<double> values(totals.begin(), totals.end());
  viz::HeatmapScale scale =
      viz::HeatmapScale::fit(values, viz::ScalingPolicy::MedianCentered);
  std::vector<double> heat(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    heat[i] = scale.normalize(values[i]);
  }
  viz::TileRenderOptions options;
  options.heat = &heat;
  options.counts = &totals;
  std::string svg = render_tiles_svg(trace.layouts[in], options);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);

  // Reuse-distance histogram (Fig 5b style).
  sim::StackDistanceResult distances = sim::stack_distances(trace, 64);
  sim::DistanceHistogram histogram =
      sim::distance_histogram(trace, distances, in);
  viz::HistogramRenderOptions histogram_options;
  histogram_options.cold_misses = histogram.cold_misses;
  std::string histogram_svg =
      viz::render_histogram_svg(histogram.distances, histogram_options);
  EXPECT_NE(histogram_svg.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace dmv
