// Columnar trace store + persistent artifact cache tests.
//
// All suites are named Store* so the CI determinism / sanitizer / TSan
// gates (-R '...|Store') pick them up: the store's contract is exact —
// pack bytes and decoded events are bit-identical at any thread count
// and lane width, and the disk artifact tier re-serves prior results
// byte for byte across process "restarts" (new cache/server objects
// over the same directory).

#include "dmv/store/trace_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dmv/par/par.hpp"
#include "dmv/serve/server.hpp"
#include "dmv/session/session.hpp"
#include "dmv/sim/pipeline.hpp"
#include "dmv/sim/trace_plan.hpp"
#include "dmv/store/artifact_store.hpp"
#include "dmv/util/json.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv {
namespace {

namespace fs = std::filesystem;

/// Fresh empty scratch directory, removed and recreated per call.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("dmv_store_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void expect_events_equal(const sim::EventList& actual,
                         const sim::EventList& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const sim::AccessEvent a = actual[i];
    const sim::AccessEvent e = expected[i];
    ASSERT_EQ(a.container, e.container) << "event " << i;
    ASSERT_EQ(a.flat, e.flat) << "event " << i;
    ASSERT_EQ(a.is_write, e.is_write) << "event " << i;
    ASSERT_EQ(a.timestep, e.timestep) << "event " << i;
    ASSERT_EQ(a.execution, e.execution) << "event " << i;
    ASSERT_EQ(a.tasklet, e.tasklet) << "event " << i;
  }
}

void expect_traces_equal(const sim::AccessTrace& actual,
                         const sim::AccessTrace& expected) {
  EXPECT_EQ(actual.containers, expected.containers);
  EXPECT_EQ(actual.executions, expected.executions);
  ASSERT_EQ(actual.layouts.size(), expected.layouts.size());
  for (std::size_t c = 0; c < expected.layouts.size(); ++c) {
    EXPECT_EQ(actual.layouts[c].name, expected.layouts[c].name);
    EXPECT_EQ(actual.layouts[c].element_size,
              expected.layouts[c].element_size);
    EXPECT_EQ(actual.layouts[c].base_address,
              expected.layouts[c].base_address);
    EXPECT_EQ(actual.layouts[c].start_offset,
              expected.layouts[c].start_offset);
    EXPECT_EQ(actual.layouts[c].shape, expected.layouts[c].shape);
    EXPECT_EQ(actual.layouts[c].strides, expected.layouts[c].strides);
  }
  expect_events_equal(actual.events, expected.events);
}

// ---------------------------------------------------------------------
// Round trip and determinism.

TEST(StoreRoundTripTest, PackUnpackExact) {
  ir::Sdfg sdfg = workloads::matmul();
  sim::AccessTrace original = sim::simulate(sdfg, workloads::matmul_fig5());
  const std::string bytes = store::pack_trace(original);
  store::TraceStoreReader reader =
      store::TraceStoreReader::from_bytes(bytes);
  EXPECT_EQ(reader.total_events(),
            static_cast<std::int64_t>(original.events.size()));
  EXPECT_EQ(reader.executions(), original.executions);
  expect_traces_equal(reader.read_trace(), original);
  reader.verify();
}

TEST(StoreRoundTripTest, BytesIdenticalAcrossThreadsAndLanes) {
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  const symbolic::SymbolMap binding = workloads::hdiff_local();

  std::vector<std::string> packed;
  sim::AccessTrace reference;
  for (const int threads : {1, 8}) {
    for (const int lanes : {1, 8}) {
      par::ThreadScope scope(threads);
      sim::SimulationOptions options;
      options.lane_width = lanes;
      sim::AccessTrace trace = sim::simulate(sdfg, binding, options);
      packed.push_back(store::pack_trace(trace));
      if (reference.events.empty()) reference = std::move(trace);
    }
  }
  for (std::size_t i = 1; i < packed.size(); ++i) {
    EXPECT_EQ(packed[i], packed[0]) << "combination " << i;
  }

  // Decoding is just as deterministic: both thread counts reproduce the
  // source events exactly.
  for (const int threads : {1, 8}) {
    par::ThreadScope scope(threads);
    store::TraceStoreReader reader =
        store::TraceStoreReader::from_bytes(packed[0]);
    sim::EventList events;
    reader.read_events(events);
    expect_events_equal(events, reference.events);
  }
}

TEST(StoreRoundTripTest, PlanAlignedChunksTileTheTrace) {
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  const symbolic::SymbolMap binding = workloads::hdiff_local();
  sim::SimulationOptions options;
  sim::AccessTrace trace = sim::simulate(sdfg, binding, options);
  sim::TracePlan plan = sim::plan_trace(sdfg, binding, options);
  ASSERT_TRUE(plan.parallelizable);

  store::StoreOptions store_options;
  store_options.chunk_events = 1 << 12;
  const std::string bytes =
      store::pack_trace(trace, store_options, &plan);
  store::TraceStoreReader reader =
      store::TraceStoreReader::from_bytes(bytes);
  ASSERT_GT(reader.chunk_count(), 1u);
  std::int64_t next_event = 0;
  std::int64_t next_execution = 0;
  for (std::size_t c = 0; c < reader.chunk_count(); ++c) {
    const store::ChunkInfo& chunk = reader.chunk(c);
    EXPECT_EQ(chunk.event_offset, next_event);
    EXPECT_EQ(chunk.execution_offset, next_execution);
    next_event += chunk.event_count;
    next_execution += chunk.execution_count;
  }
  EXPECT_EQ(next_event, reader.total_events());
  expect_traces_equal(reader.read_trace(), trace);
}

TEST(StoreRoundTripTest, SingleChunkRandomRead) {
  ir::Sdfg sdfg = workloads::matmul();
  sim::AccessTrace trace = sim::simulate(sdfg, workloads::matmul_fig5());
  store::StoreOptions options;
  options.chunk_events = 256;
  const std::string bytes = store::pack_trace(trace, options);
  store::TraceStoreReader reader =
      store::TraceStoreReader::from_bytes(bytes);
  ASSERT_GT(reader.chunk_count(), 2u);

  // Decode ONE interior chunk into a full-size buffer and check only
  // its slice — the random-re-read path of the out-of-core mode.
  const std::size_t target = reader.chunk_count() / 2;
  const store::ChunkInfo& chunk = reader.chunk(target);
  sim::EventList events;
  events.resize(static_cast<std::size_t>(reader.total_events()));
  reader.read_chunk_into(target, events);
  for (std::int64_t i = 0; i < chunk.event_count; ++i) {
    const std::size_t at =
        static_cast<std::size_t>(chunk.event_offset + i);
    const sim::AccessEvent a = events[at];
    const sim::AccessEvent e = trace.events[at];
    ASSERT_EQ(a.container, e.container);
    ASSERT_EQ(a.flat, e.flat);
    ASSERT_EQ(a.timestep, e.timestep);
  }
}

TEST(StoreRoundTripTest, EmptyTraceRoundTrips) {
  sim::AccessTrace trace;
  sim::ConcreteLayout layout;
  layout.name = "only";
  layout.element_size = 8;
  layout.shape = {4, 4};
  layout.strides = {4, 1};
  trace.containers.push_back(layout.name);
  trace.layouts.push_back(std::move(layout));
  trace.executions = 0;

  const std::string bytes = store::pack_trace(trace);
  store::TraceStoreReader reader =
      store::TraceStoreReader::from_bytes(bytes);
  EXPECT_EQ(reader.total_events(), 0);
  EXPECT_EQ(reader.chunk_count(), 0u);
  expect_traces_equal(reader.read_trace(), trace);
}

TEST(StoreRoundTripTest, CompressesAtLeastTwoToOne) {
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  sim::AccessTrace trace = sim::simulate(sdfg, workloads::hdiff_local());
  const std::string bytes = store::pack_trace(trace);
  EXPECT_GE(trace.events.capacity_bytes(), 2 * bytes.size())
      << "raw " << trace.events.capacity_bytes() << " vs packed "
      << bytes.size();
}

TEST(StoreRoundTripTest, FileWriteAndMmapRead) {
  const fs::path dir = scratch_dir("file_roundtrip");
  ir::Sdfg sdfg = workloads::matmul();
  sim::AccessTrace trace = sim::simulate(sdfg, workloads::matmul_fig5());
  const std::string path = (dir / "trace.dmvt").string();
  store::write_trace_file(trace, path);
  store::TraceStoreReader reader(path);
  expect_traces_equal(reader.read_trace(), trace);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Reader robustness: every malformed input is a clean runtime_error.

std::string small_store_bytes() {
  ir::Sdfg sdfg = workloads::matmul();
  sim::AccessTrace trace = sim::simulate(sdfg, workloads::matmul_fig5());
  return store::pack_trace(trace);
}

TEST(StoreReaderTest, TruncatedFileThrows) {
  const std::string bytes = small_store_bytes();
  for (const std::size_t keep :
       {std::size_t{3}, std::size_t{17}, bytes.size() / 2,
        bytes.size() - 1}) {
    EXPECT_THROW(store::TraceStoreReader::from_bytes(bytes.substr(0, keep)),
                 std::runtime_error)
        << "kept " << keep << " bytes";
  }
}

TEST(StoreReaderTest, BadMagicThrows) {
  std::string bytes = small_store_bytes();
  bytes[0] = 'X';
  EXPECT_THROW(store::TraceStoreReader::from_bytes(bytes),
               std::runtime_error);
}

TEST(StoreReaderTest, VersionMismatchThrows) {
  std::string bytes = small_store_bytes();
  bytes[4] = 0x7f;  // u32 version field, little-endian low byte.
  EXPECT_THROW(store::TraceStoreReader::from_bytes(bytes),
               std::runtime_error);
}

TEST(StoreReaderTest, CorruptedChunkPayloadThrows) {
  std::string bytes = small_store_bytes();
  store::TraceStoreReader clean = store::TraceStoreReader::from_bytes(bytes);
  ASSERT_GT(clean.chunk_count(), 0u);
  // Flip one byte in the middle of the first chunk's payload: either a
  // section decode fails or the per-chunk checksum catches it.
  const store::ChunkInfo& chunk = clean.chunk(0);
  bytes[chunk.payload_offset + chunk.payload_size / 2] ^= 0x40;
  store::TraceStoreReader corrupt =
      store::TraceStoreReader::from_bytes(bytes);
  EXPECT_THROW(corrupt.verify(), std::runtime_error);
  sim::EventList events;
  EXPECT_THROW(corrupt.read_events(events), std::runtime_error);
}

TEST(StoreReaderTest, EmptyFileThrows) {
  const fs::path dir = scratch_dir("empty_file");
  const fs::path path = dir / "empty.dmvt";
  std::ofstream(path).close();
  EXPECT_THROW(store::TraceStoreReader(path.string()), std::runtime_error);
  EXPECT_THROW(store::TraceStoreReader((dir / "missing.dmvt").string()),
               std::runtime_error);
  EXPECT_THROW(store::TraceStoreReader::from_bytes(std::string()),
               std::runtime_error);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// EventList spilling.

TEST(StoreSpillTest, SpillReleasesMemoryAndFaultsBack) {
  const fs::path dir = scratch_dir("spill_fault");
  ir::Sdfg sdfg = workloads::matmul();
  sim::AccessTrace reference = sim::simulate(sdfg, workloads::matmul_fig5());
  sim::AccessTrace spilled = sim::simulate(sdfg, workloads::matmul_fig5());

  store::spill_event_list(spilled.events, dir.string());
  EXPECT_TRUE(spilled.events.spilled());
  EXPECT_EQ(spilled.events.capacity_bytes(), 0u);
  EXPECT_EQ(spilled.events.size(), reference.events.size());
  ASSERT_FALSE(fs::is_empty(dir)) << "spill file missing";

  // First element access faults the columns back in...
  expect_events_equal(spilled.events, reference.events);
  EXPECT_FALSE(spilled.events.spilled());
  EXPECT_GT(spilled.events.capacity_bytes(), 0u);
  // ...and releases the backing file with the restore hook.
  EXPECT_TRUE(fs::is_empty(dir));
  fs::remove_all(dir);
}

TEST(StoreSpillTest, ClearDropsBackingWithoutDecode) {
  const fs::path dir = scratch_dir("spill_clear");
  ir::Sdfg sdfg = workloads::matmul();
  sim::AccessTrace trace = sim::simulate(sdfg, workloads::matmul_fig5());
  store::spill_event_list(trace.events, dir.string());
  ASSERT_TRUE(trace.events.spilled());
  trace.events.clear();
  EXPECT_EQ(trace.events.size(), 0u);
  EXPECT_FALSE(trace.events.spilled());
  EXPECT_TRUE(fs::is_empty(dir)) << "clear() must drop the spill file";
  fs::remove_all(dir);
}

TEST(StoreSpillTest, PipelineBitIdenticalWithSpilling) {
  const fs::path dir = scratch_dir("spill_pipeline");
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  symbolic::SymbolMap binding = workloads::hdiff_local();

  sim::PipelineConfig config;
  config.miss_threshold_lines = 8;
  config.element_stats = true;
  config.movement = true;
  sim::MetricPipeline plain(config);
  sim::MetricPipeline spilling(config);
  // A 1-byte budget spills after EVERY materialized run, so each delta
  // step faults the checkpoint back in before splicing.
  spilling.set_spill(1, dir.string());

  const std::uint64_t version = 42;
  for (const std::int64_t k : {5, 6, 7, 6, 5}) {
    binding["K"] = k;
    sim::DeltaOutcome plain_outcome, spill_outcome;
    sim::PipelineResult expected =
        plain.run_delta(sdfg, version, binding, {}, &plain_outcome);
    sim::PipelineResult actual =
        spilling.run_delta(sdfg, version, binding, {}, &spill_outcome);
    EXPECT_EQ(serve::result_checksum(actual),
              serve::result_checksum(expected))
        << "K=" << k;
    EXPECT_EQ(actual.distances.distances, expected.distances.distances);
    EXPECT_EQ(actual.counts.reads, expected.counts.reads);
    EXPECT_EQ(actual.movement.total_bytes, expected.movement.total_bytes);
    // Spilling must not change HOW steps are satisfied either.
    EXPECT_EQ(static_cast<int>(spill_outcome.path),
              static_cast<int>(plain_outcome.path))
        << "K=" << k;
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Persistent artifact tier.

session::ArtifactKey test_key(std::uint8_t kind, std::int64_t k) {
  session::ArtifactKey key;
  key.kind = kind;
  key.program_hash = 0x1234abcdu;
  key.config_hash = 0x9876u;
  key.binding = {{"I", 8}, {"K", k}};
  return key;
}

TEST(StoreDiskCacheTest, ArtifactSurvivesCacheRestart) {
  const fs::path dir = scratch_dir("disk_restart");
  const std::string payload = "payload bytes \x01\x02\x03";
  {
    store::DiskArtifactCache cache({dir.string()});
    cache.store(test_key(9, 5), payload);
    EXPECT_EQ(cache.stats().writes, 1);
  }
  store::DiskArtifactCache reopened({dir.string()});
  EXPECT_EQ(reopened.stats().files, 1u);
  std::string loaded;
  ASSERT_TRUE(reopened.load(test_key(9, 5), loaded));
  EXPECT_EQ(loaded, payload);
  EXPECT_FALSE(reopened.load(test_key(9, 6), loaded));
  EXPECT_EQ(reopened.stats().hits, 1);
  EXPECT_EQ(reopened.stats().misses, 1);
  fs::remove_all(dir);
}

TEST(StoreDiskCacheTest, CorruptArtifactDroppedCleanly) {
  const fs::path dir = scratch_dir("disk_corrupt");
  store::DiskArtifactCache cache({dir.string()});
  cache.store(test_key(9, 5), "precious artifact bytes");
  fs::path file;
  for (const auto& entry : fs::directory_iterator(dir)) {
    file = entry.path();
  }
  ASSERT_FALSE(file.empty());
  {
    std::fstream patch(file,
                       std::ios::in | std::ios::out | std::ios::binary);
    patch.seekp(-3, std::ios::end);
    patch.put('\x5a');
  }
  std::string loaded;
  EXPECT_FALSE(cache.load(test_key(9, 5), loaded));
  EXPECT_EQ(cache.stats().dropped_corrupt, 1);
  EXPECT_FALSE(fs::exists(file)) << "corrupt file must be removed";
  fs::remove_all(dir);
}

TEST(StoreDiskCacheTest, PipelineResultCodecIsExact) {
  ir::Sdfg sdfg = workloads::matmul();
  sim::PipelineConfig config;
  config.miss_threshold_lines = 8;
  config.element_stats = true;
  config.movement = true;
  config.keep_distances = true;
  sim::CacheConfig cache_config;
  config.cache = cache_config;
  sim::MetricPipeline pipeline(config);
  sim::PipelineResult original =
      pipeline.run(sdfg, workloads::matmul_fig5());

  const session::ArtifactCodec codec = store::pipeline_result_codec();
  const std::string bytes = codec.encode(&original);
  std::shared_ptr<const void> decoded = codec.decode(bytes);
  ASSERT_NE(decoded, nullptr);
  const auto& restored =
      *static_cast<const sim::PipelineResult*>(decoded.get());
  EXPECT_EQ(restored.events, original.events);
  EXPECT_EQ(restored.executions, original.executions);
  EXPECT_EQ(restored.containers, original.containers);
  EXPECT_EQ(restored.counts.reads, original.counts.reads);
  EXPECT_EQ(restored.counts.writes, original.counts.writes);
  EXPECT_EQ(restored.distances.distances, original.distances.distances);
  EXPECT_EQ(serve::result_checksum(restored),
            serve::result_checksum(original));

  // Any bit flip makes decode() report malformation, not garbage.
  for (const std::size_t at : {std::size_t{6}, bytes.size() / 2}) {
    std::string damaged = bytes;
    damaged[at] ^= 0x10;
    EXPECT_EQ(codec.decode(damaged), nullptr) << "flip at " << at;
  }
  EXPECT_EQ(codec.decode(std::string("DMVR")), nullptr);
}

TEST(StoreDiskCacheTest, SharedTierWarmStartsFromDisk) {
  const fs::path dir = scratch_dir("shared_warm");
  ir::Sdfg sdfg = workloads::matmul();
  sim::MetricPipeline pipeline(sim::PipelineConfig{});
  auto artifact = std::make_shared<sim::PipelineResult>(
      pipeline.run(sdfg, workloads::matmul_fig5()));
  const std::uint8_t kind = session::metrics_artifact_kind();

  session::SharedArtifactCache::Config config;
  config.disk_dir = dir.string();
  config.codecs.emplace_back(kind, store::pipeline_result_codec());
  {
    session::SharedArtifactCache first(config);
    first.insert(test_key(kind, 5), artifact, 1024);
    EXPECT_EQ(first.stats().disk_writes, 1);
  }

  // A new cache over the same directory — a restarted process — serves
  // the artifact from disk and promotes it into RAM.
  session::SharedArtifactCache second(config);
  std::shared_ptr<const void> hit = second.lookup(test_key(kind, 5));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(serve::result_checksum(
                *static_cast<const sim::PipelineResult*>(hit.get())),
            serve::result_checksum(*artifact));
  EXPECT_EQ(second.stats().disk_hits, 1);
  // Promoted: the next lookup is a RAM hit, no second disk probe.
  EXPECT_NE(second.lookup(test_key(kind, 5)), nullptr);
  EXPECT_EQ(second.stats().disk_hits, 1);
  // clear() keeps the disk tier (that persistence is its purpose).
  second.clear();
  EXPECT_NE(second.lookup(test_key(kind, 5)), nullptr);
  EXPECT_EQ(second.stats().disk_hits, 2);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Server warm restart: the end-to-end acceptance path.

TEST(StoreServeTest, RestartedServerServesFromDiskWithoutSimulating) {
  const fs::path dir = scratch_dir("serve_restart");
  serve::ServerConfig config;
  config.shared_cache.disk_dir = dir.string();

  const std::string open_line =
      "{\"id\":1,\"method\":\"open_program\",\"params\":{\"session\":\"a\","
      "\"workload\":\"hdiff\",\"binding\":{\"I\":8,\"J\":8,\"K\":5}}}";
  const std::string step_line =
      "{\"id\":2,\"method\":\"step\",\"params\":{\"session\":\"a\","
      "\"symbol\":\"K\",\"value\":6}}";

  std::string cold_checksum;
  {
    serve::Server server(config);
    server.handle(open_line);
    const json::Value stepped = json::parse(server.handle(step_line));
    ASSERT_TRUE(stepped.has("result")) << json::dump(stepped);
    cold_checksum = stepped.at("result").at("checksum").as_string();
    EXPECT_EQ(stepped.at("result").at("served_by").as_string(), "compute");
  }

  serve::Server restarted(config);
  restarted.handle(open_line);
  const json::Value warm = json::parse(restarted.handle(step_line));
  ASSERT_TRUE(warm.has("result")) << json::dump(warm);
  EXPECT_EQ(warm.at("result").at("checksum").as_string(), cold_checksum);
  EXPECT_EQ(warm.at("result").at("served_by").as_string(), "shared_cache");
  const session::SharedCacheStats stats = restarted.shared_cache_stats();
  EXPECT_GT(stats.disk_hits, 0);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dmv
