#include "dmv/symbolic/expr.hpp"

#include <gtest/gtest.h>

#include <random>

#include "dmv/symbolic/parser.hpp"

namespace dmv::symbolic {
namespace {

TEST(Expr, DefaultIsZero) {
  Expr e;
  EXPECT_TRUE(e.is_constant(0));
  EXPECT_EQ(e.evaluate({}), 0);
}

TEST(Expr, ConstantRoundTrip) {
  EXPECT_EQ(Expr(42).constant_value(), 42);
  EXPECT_EQ(Expr(-7).constant_value(), -7);
  EXPECT_EQ(Expr::constant(1 << 20).evaluate({}), 1 << 20);
}

TEST(Expr, SymbolEvaluation) {
  Expr n = Expr::symbol("N");
  EXPECT_TRUE(n.is_symbol());
  EXPECT_EQ(n.evaluate({{"N", 5}}), 5);
  EXPECT_THROW(n.evaluate({}), UnboundSymbolError);
}

TEST(Expr, UnboundSymbolErrorNamesTheSymbol) {
  try {
    (Expr::symbol("SM") * 2).evaluate({{"B", 1}});
    FAIL() << "expected UnboundSymbolError";
  } catch (const UnboundSymbolError& error) {
    EXPECT_EQ(error.symbol(), "SM");
  }
}

TEST(Expr, BasicArithmetic) {
  Expr n = Expr::symbol("N");
  SymbolMap env{{"N", 10}};
  EXPECT_EQ((n + 3).evaluate(env), 13);
  EXPECT_EQ((n - 3).evaluate(env), 7);
  EXPECT_EQ((n * n).evaluate(env), 100);
  EXPECT_EQ((n / 3).evaluate(env), 3);
  EXPECT_EQ((n % 3).evaluate(env), 1);
  EXPECT_EQ((-n).evaluate(env), -10);
}

TEST(Expr, MinMaxPowCeilDiv) {
  Expr n = Expr::symbol("N");
  SymbolMap env{{"N", 10}};
  EXPECT_EQ(min(n, Expr(4)).evaluate(env), 4);
  EXPECT_EQ(max(n, Expr(4)).evaluate(env), 10);
  EXPECT_EQ(pow(n, Expr(3)).evaluate(env), 1000);
  EXPECT_EQ(ceil_div(n, Expr(3)).evaluate(env), 4);
  EXPECT_EQ(ceil_div(Expr(9), Expr(3)).constant_value(), 3);
}

TEST(Expr, FloorDivisionSemantics) {
  // Floor semantics for negatives, matching index arithmetic.
  EXPECT_EQ(floor_div_i64(7, 2), 3);
  EXPECT_EQ(floor_div_i64(-7, 2), -4);
  EXPECT_EQ(floor_div_i64(7, -2), -4);
  EXPECT_EQ(mod_i64(-7, 2), 1);
  EXPECT_EQ(mod_i64(7, 2), 1);
  EXPECT_EQ(ceil_div_i64(-7, 2), -3);
}

TEST(Expr, DivisionByZeroThrows) {
  EXPECT_THROW(floor_div_i64(1, 0), std::domain_error);
  EXPECT_THROW(mod_i64(1, 0), std::domain_error);
  EXPECT_THROW((Expr(1) / Expr(0)).evaluate({}), std::domain_error);
}

TEST(Expr, TryEvaluate) {
  Expr n = Expr::symbol("N");
  EXPECT_EQ(n.try_evaluate({{"N", 3}}), 3);
  EXPECT_EQ(n.try_evaluate({}), std::nullopt);
  EXPECT_EQ((Expr(1) / Expr::symbol("Z")).try_evaluate({{"Z", 0}}),
            std::nullopt);
}

TEST(Simplify, ConstantFolding) {
  EXPECT_TRUE((Expr(2) + Expr(3)).is_constant(5));
  EXPECT_TRUE((Expr(2) * Expr(3)).is_constant(6));
  EXPECT_TRUE(pow(Expr(2), Expr(10)).is_constant(1024));
}

TEST(Simplify, Identities) {
  Expr n = Expr::symbol("N");
  EXPECT_EQ((n + 0).to_string(), "N");
  EXPECT_EQ((n * 1).to_string(), "N");
  EXPECT_TRUE((n * 0).is_constant(0));
  EXPECT_EQ((n / 1).to_string(), "N");
  EXPECT_TRUE((n - n).is_constant(0));
  EXPECT_TRUE((Expr(0) % n).is_constant(0));
  EXPECT_TRUE(pow(n, Expr(0)).is_constant(1));
  EXPECT_EQ(pow(n, Expr(1)).to_string(), "N");
}

TEST(Simplify, LikeTermCollection) {
  Expr n = Expr::symbol("N");
  EXPECT_EQ((n + n).to_string(), "2*N");
  EXPECT_EQ((n * 3 + n * 4).to_string(), "7*N");
  EXPECT_EQ((n * 3 - n * 3).to_string(), "0");
}

TEST(Simplify, CanonicalOrdering) {
  // Construction order does not matter after simplification.
  Expr a = Expr::symbol("A"), b = Expr::symbol("B");
  EXPECT_EQ((a + b).to_string(), (b + a).to_string());
  EXPECT_EQ((a * b).to_string(), (b * a).to_string());
}

TEST(Simplify, ExpandedDistributes) {
  Expr n = Expr::symbol("N");
  EXPECT_TRUE(expanded((n + 1) * (n + 2))
                  .equals(n * n + 3 * n + Expr(2)));
  EXPECT_TRUE(expanded(pow(n + 1, Expr(2))).equals(n * n + 2 * n + 1));
}

TEST(Simplify, ExactDivisionCancellation) {
  Expr n = Expr::symbol("N"), t = Expr::symbol("T");
  // The symbolic tile-count shape: (N*T)/T -> N.
  EXPECT_EQ(((n * t) / t).to_string(), "N");
  EXPECT_EQ((n / n).to_string(), "1");
  EXPECT_TRUE(((n * t) % t).is_constant(0));
  EXPECT_TRUE((n % n).is_constant(0));
  // Constant coefficient divides out: (6*N)/3 -> 2*N.
  EXPECT_EQ(((Expr(6) * n) / 3).to_string(), "2*N");
  EXPECT_EQ(((Expr(6) * n) / 6).to_string(), "N");
  // No unsound cancellation when the factor is absent.
  EXPECT_EQ(((n + 1) / t).kind(), ExprKind::FloorDiv);
  EXPECT_EQ(((Expr(5) * n) / 3).kind(), ExprKind::FloorDiv);
}

TEST(Equals, PolynomialEquivalence) {
  Expr n = Expr::symbol("N"), m = Expr::symbol("M");
  EXPECT_TRUE((2 * (n + 1)).equals(2 * n + 2));
  EXPECT_TRUE(((n + m) * (n + m)).equals(n * n + 2 * n * m + m * m));
  EXPECT_FALSE((n + 1).equals(n + 2));
  EXPECT_FALSE(n.equals(m));
}

TEST(Substitute, PartialBinding) {
  Expr e = Expr::symbol("N") * Expr::symbol("M") + Expr::symbol("N");
  Expr bound = e.substitute(SymbolMap{{"N", 3}});
  EXPECT_EQ(bound.free_symbols(), std::set<std::string>{"M"});
  EXPECT_EQ(bound.evaluate({{"M", 5}}), 18);
}

TEST(Substitute, ExpressionReplacement) {
  Expr e = Expr::symbol("i") + 1;
  Expr replaced = e.substitute(
      std::map<std::string, Expr>{{"i", Expr::symbol("j") * 2}});
  EXPECT_EQ(replaced.evaluate({{"j", 4}}), 9);
}

TEST(FreeSymbols, CollectsAll) {
  Expr e = parse("B*H + min(SM, P) - ceil_div(I, 4)");
  EXPECT_EQ(e.free_symbols(),
            (std::set<std::string>{"B", "H", "SM", "P", "I"}));
}

TEST(Parser, Precedence) {
  EXPECT_EQ(parse("2 + 3 * 4").constant_value(), 14);
  EXPECT_EQ(parse("(2 + 3) * 4").constant_value(), 20);
  EXPECT_EQ(parse("2 ** 3 ** 2").constant_value(), 512);  // Right-assoc.
  EXPECT_EQ(parse("10 - 3 - 2").constant_value(), 5);
  EXPECT_EQ(parse("-3 + 5").constant_value(), 2);
  EXPECT_EQ(parse("7 / 2").constant_value(), 3);
  EXPECT_EQ(parse("7 % 4").constant_value(), 3);
}

TEST(Parser, Functions) {
  EXPECT_EQ(parse("min(3, 5)").constant_value(), 3);
  EXPECT_EQ(parse("max(3, 5)").constant_value(), 5);
  EXPECT_EQ(parse("ceil_div(7, 2)").constant_value(), 4);
  EXPECT_EQ(parse("ceiling(7, 2)").constant_value(), 4);
  EXPECT_EQ(parse("pow(2, 5)").constant_value(), 32);
}

TEST(Parser, Symbols) {
  Expr e = parse("B * H * SM * P");
  EXPECT_EQ(e.evaluate({{"B", 8}, {"H", 16}, {"SM", 512}, {"P", 64}}),
            8LL * 16 * 512 * 64);
}

TEST(Parser, Whitespace) {
  EXPECT_EQ(parse("  1+ 2 ").constant_value(), 3);
  EXPECT_EQ(parse("\tN  *\t2").evaluate({{"N", 4}}), 8);
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("1 +"), ParseError);
  EXPECT_THROW(parse("(1"), ParseError);
  EXPECT_THROW(parse("1 2"), ParseError);
  EXPECT_THROW(parse("foo(1)"), ParseError);
  EXPECT_THROW(parse("min(1)"), ParseError);
  EXPECT_THROW(parse("$"), ParseError);
}

TEST(Parser, ErrorCarriesPosition) {
  try {
    parse("1 + $");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.position(), 4u);
  }
}

TEST(Printer, Readability) {
  EXPECT_EQ(parse("N - 1").to_string(), "N - 1");
  EXPECT_EQ(parse("1 - N").to_string(), "1 - N");
  EXPECT_EQ(parse("(I+4)*(J+4)").to_string(), "(4 + I)*(4 + J)");
  EXPECT_EQ(parse("N % 4").to_string(), "N % 4");
  EXPECT_EQ(parse("-N - 1").to_string(), "-1 - N");
}

// Property: printing then re-parsing preserves value on random
// expressions built from a small grammar.
class RandomExprProperty : public ::testing::TestWithParam<int> {};

Expr random_expr(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> kind(0, depth <= 0 ? 1 : 6);
  switch (kind(rng)) {
    case 0:
      return Expr(std::uniform_int_distribution<int>(0, 9)(rng));
    case 1: {
      const char* names[] = {"A", "B", "C"};
      return Expr::symbol(
          names[std::uniform_int_distribution<int>(0, 2)(rng)]);
    }
    case 2:
      return random_expr(rng, depth - 1) + random_expr(rng, depth - 1);
    case 3:
      return random_expr(rng, depth - 1) * random_expr(rng, depth - 1);
    case 4:
      return random_expr(rng, depth - 1) - random_expr(rng, depth - 1);
    case 5:
      return min(random_expr(rng, depth - 1), random_expr(rng, depth - 1));
    default:
      return max(random_expr(rng, depth - 1), random_expr(rng, depth - 1));
  }
}

TEST_P(RandomExprProperty, PrintParseRoundTripPreservesValue) {
  std::mt19937 rng(GetParam());
  const SymbolMap env{{"A", 3}, {"B", 7}, {"C", 11}};
  for (int i = 0; i < 25; ++i) {
    Expr e = random_expr(rng, 4);
    Expr reparsed = parse(e.to_string());
    EXPECT_EQ(e.evaluate(env), reparsed.evaluate(env))
        << "expr: " << e.to_string();
  }
}

TEST_P(RandomExprProperty, SubstituteAllEqualsEvaluate) {
  std::mt19937 rng(GetParam() + 1000);
  const SymbolMap env{{"A", 2}, {"B", 5}, {"C", 9}};
  for (int i = 0; i < 25; ++i) {
    Expr e = random_expr(rng, 4);
    Expr substituted = e.substitute(env);
    ASSERT_TRUE(substituted.is_constant()) << substituted.to_string();
    EXPECT_EQ(substituted.constant_value(), e.evaluate(env));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExprProperty,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace dmv::symbolic
