#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "dmv/analysis/analysis.hpp"
#include "dmv/par/par.hpp"
#include "dmv/sim/pipeline.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/workloads/workloads.hpp"

// Determinism contract of the parallel engine: every metric pass and the
// compiled simulator must be BIT-IDENTICAL to the serial interpreted
// baseline — the parallelism and expression compilation are pure
// performance changes, never numeric ones. These tests run the same
// inputs through (a) the interpreted vs compiled simulator and (b) the
// metric passes at 1 vs 8 threads, and require exact equality.

namespace dmv::sim {
namespace {

void expect_traces_identical(const AccessTrace& a, const AccessTrace& b) {
  ASSERT_EQ(a.containers, b.containers);
  ASSERT_EQ(a.executions, b.executions);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const AccessEvent& x = a.events[i];
    const AccessEvent& y = b.events[i];
    ASSERT_EQ(x.container, y.container) << "event " << i;
    ASSERT_EQ(x.flat, y.flat) << "event " << i;
    ASSERT_EQ(x.is_write, y.is_write) << "event " << i;
    ASSERT_EQ(x.timestep, y.timestep) << "event " << i;
    ASSERT_EQ(x.execution, y.execution) << "event " << i;
    ASSERT_EQ(x.tasklet, y.tasklet) << "event " << i;
  }
}

void expect_stats_equal(const MissStats& a, const MissStats& b) {
  EXPECT_EQ(a.cold, b.cold);
  EXPECT_EQ(a.capacity, b.capacity);
  EXPECT_EQ(a.hits, b.hits);
}

TEST(Determinism, CompiledSimulatorMatchesInterpreterOnHdiff) {
  const ir::Sdfg sdfg =
      workloads::hdiff(workloads::HdiffVariant::Baseline);
  const symbolic::SymbolMap binding = workloads::hdiff_local();
  SimulationOptions interpreted;
  interpreted.compiled = false;
  SimulationOptions compiled;
  compiled.compiled = true;
  expect_traces_identical(simulate(sdfg, binding, interpreted),
                          simulate(sdfg, binding, compiled));
}

TEST(Determinism, CompiledSimulatorMatchesInterpreterOnBert) {
  const ir::Sdfg sdfg = workloads::bert_encoder(workloads::BertStage::Fused1);
  const symbolic::SymbolMap binding = workloads::bert_small();
  SimulationOptions interpreted;
  interpreted.compiled = false;
  SimulationOptions compiled;
  compiled.compiled = true;
  expect_traces_identical(simulate(sdfg, binding, interpreted),
                          simulate(sdfg, binding, compiled));
}

// Records the exact sink call sequence so streaming runs can be
// compared call-for-call across thread counts.
class RecordingSink : public EventSink {
 public:
  void on_trace_header(const AccessTrace& header) override {
    containers = header.containers;
  }
  void on_event(const AccessEvent& event) override {
    events.push_back(event);
  }
  void on_trace_end(std::int64_t n) override { executions = n; }

  std::vector<std::string> containers;
  std::vector<AccessEvent> events;
  std::int64_t executions = 0;
};

void expect_events_identical(const std::vector<AccessEvent>& a,
                             const std::vector<AccessEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].container, b[i].container) << "event " << i;
    ASSERT_EQ(a[i].flat, b[i].flat) << "event " << i;
    ASSERT_EQ(a[i].is_write, b[i].is_write) << "event " << i;
    ASSERT_EQ(a[i].timestep, b[i].timestep) << "event " << i;
    ASSERT_EQ(a[i].execution, b[i].execution) << "event " << i;
    ASSERT_EQ(a[i].tasklet, b[i].tasklet) << "event " << i;
  }
}

TEST(Determinism, ParallelTraceBitIdenticalAcrossThreadCounts) {
  // The tentpole contract: chunked parallel generation is a pure
  // performance change. 1 thread (serial fallback), 8 threads (chunked),
  // and parallel_trace = false must produce byte-identical traces.
  for (const bool compiled : {true, false}) {
    SimulationOptions options;
    options.compiled = compiled;
    const std::vector<std::pair<ir::Sdfg, symbolic::SymbolMap>> cases = [] {
      std::vector<std::pair<ir::Sdfg, symbolic::SymbolMap>> list;
      list.emplace_back(workloads::hdiff(workloads::HdiffVariant::Baseline),
                        workloads::hdiff_local());
      list.emplace_back(workloads::matmul(),
                        symbolic::SymbolMap{{"M", 12}, {"N", 10}, {"K", 8}});
      list.emplace_back(workloads::bert_encoder(workloads::BertStage::Fused1),
                        workloads::bert_small());
      return list;
    }();
    for (const auto& [sdfg, binding] : cases) {
      SimulationOptions serial_options = options;
      serial_options.parallel_trace = false;
      const AccessTrace reference = simulate(sdfg, binding, serial_options);
      AccessTrace one;
      AccessTrace eight;
      {
        par::ThreadScope scope(1);
        one = simulate(sdfg, binding, options);
      }
      {
        par::ThreadScope scope(8);
        eight = simulate(sdfg, binding, options);
      }
      expect_traces_identical(reference, one);
      expect_traces_identical(reference, eight);
    }
  }
}

TEST(Determinism, BatchedTraceBitIdenticalAcrossThreadsAndLanes) {
  // Lane batching is a pure latency knob on top of chunk parallelism:
  // every (thread count, lane width) combination must reproduce the
  // scalar serial trace byte for byte, full EventList column equality.
  const std::vector<std::pair<ir::Sdfg, symbolic::SymbolMap>> cases = [] {
    std::vector<std::pair<ir::Sdfg, symbolic::SymbolMap>> list;
    list.emplace_back(workloads::hdiff(workloads::HdiffVariant::Baseline),
                      workloads::hdiff_local());
    list.emplace_back(workloads::matmul(),
                      symbolic::SymbolMap{{"M", 12}, {"N", 10}, {"K", 8}});
    list.emplace_back(workloads::bert_encoder(workloads::BertStage::Fused1),
                      workloads::bert_small());
    return list;
  }();
  for (const auto& [sdfg, binding] : cases) {
    SimulationOptions reference_options;
    reference_options.parallel_trace = false;
    reference_options.lane_width = 1;
    const AccessTrace reference = simulate(sdfg, binding, reference_options);
    for (const int threads : {1, 8}) {
      for (const int lanes : {1, 8}) {
        SimulationOptions options;
        options.lane_width = lanes;
        par::ThreadScope scope(threads);
        const AccessTrace trace = simulate(sdfg, binding, options);
        expect_traces_identical(reference, trace);
      }
    }
  }
}

TEST(Determinism, StreamingSinkSequenceIdenticalAcrossThreadCounts) {
  // simulate_stream's ordered sequencer: out-of-order chunk completion
  // must not reorder, duplicate, or drop a single sink call.
  const ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  const symbolic::SymbolMap binding = workloads::hdiff_local();
  RecordingSink serial;
  RecordingSink parallel;
  {
    par::ThreadScope scope(1);
    simulate_stream(sdfg, binding, serial);
  }
  {
    par::ThreadScope scope(8);
    simulate_stream(sdfg, binding, parallel);
  }
  EXPECT_EQ(serial.containers, parallel.containers);
  EXPECT_EQ(serial.executions, parallel.executions);
  expect_events_identical(serial.events, parallel.events);
  // And the stream agrees with the materialized trace.
  const AccessTrace reference = simulate(sdfg, binding);
  ASSERT_EQ(parallel.events.size(), reference.events.size());
  EXPECT_EQ(parallel.executions, reference.executions);
}

TEST(Determinism, MetricPassesBitIdenticalAcrossThreadCounts) {
  const ir::Sdfg sdfg =
      workloads::hdiff(workloads::HdiffVariant::Baseline);
  const AccessTrace trace =
      simulate(sdfg, symbolic::SymbolMap{{"I", 12}, {"J", 12}, {"K", 6}});
  const StackDistanceResult distances = stack_distances(trace, 64);

  AccessCounts counts_serial;
  MissReport report_serial;
  ElementDistanceStats stats_serial;
  CacheSimResult cache_serial;
  {
    par::ThreadScope scope(1);
    counts_serial = count_accesses(trace);
    report_serial = classify_misses(trace, distances, 64);
    stats_serial = element_distance_stats(trace, distances, 0);
    cache_serial = simulate_cache(trace, CacheConfig{});
  }
  AccessCounts counts_parallel;
  MissReport report_parallel;
  ElementDistanceStats stats_parallel;
  CacheSimResult cache_parallel;
  {
    par::ThreadScope scope(8);
    counts_parallel = count_accesses(trace);
    report_parallel = classify_misses(trace, distances, 64);
    stats_parallel = element_distance_stats(trace, distances, 0);
    cache_parallel = simulate_cache(trace, CacheConfig{});
  }

  EXPECT_EQ(counts_serial.reads, counts_parallel.reads);
  EXPECT_EQ(counts_serial.writes, counts_parallel.writes);

  EXPECT_EQ(report_serial.element_misses, report_parallel.element_misses);
  ASSERT_EQ(report_serial.per_container.size(),
            report_parallel.per_container.size());
  for (std::size_t c = 0; c < report_serial.per_container.size(); ++c) {
    expect_stats_equal(report_serial.per_container[c],
                       report_parallel.per_container[c]);
  }
  expect_stats_equal(report_serial.total, report_parallel.total);

  EXPECT_EQ(stats_serial.min, stats_parallel.min);
  EXPECT_EQ(stats_serial.median, stats_parallel.median);
  EXPECT_EQ(stats_serial.max, stats_parallel.max);
  EXPECT_EQ(stats_serial.cold_count, stats_parallel.cold_count);

  ASSERT_EQ(cache_serial.per_container.size(),
            cache_parallel.per_container.size());
  for (std::size_t c = 0; c < cache_serial.per_container.size(); ++c) {
    expect_stats_equal(cache_serial.per_container[c],
                       cache_parallel.per_container[c]);
  }
  expect_stats_equal(cache_serial.total, cache_parallel.total);
}

TEST(Determinism, FusedPipelineBitIdenticalAcrossThreadCounts) {
  // The fused pass itself is serial, but its inputs (simulation,
  // LineTable) and the standalone passes it must match are parallel —
  // the whole pipeline must not depend on the thread knob.
  const ir::Sdfg sdfg =
      workloads::hdiff(workloads::HdiffVariant::Baseline);
  const symbolic::SymbolMap binding{{"I", 12}, {"J", 12}, {"K", 6}};

  PipelineConfig config;
  config.miss_threshold_lines = 64;
  config.keep_distances = true;
  config.element_stats = true;
  config.cache = CacheConfig{};
  config.movement = true;

  PipelineResult serial;
  PipelineResult parallel;
  {
    par::ThreadScope scope(1);
    MetricPipeline pipeline(config);
    serial = pipeline.run(sdfg, binding);
  }
  {
    par::ThreadScope scope(8);
    MetricPipeline pipeline(config);
    parallel = pipeline.run_streaming(sdfg, binding);
  }

  EXPECT_EQ(serial.events, parallel.events);
  EXPECT_EQ(serial.executions, parallel.executions);
  EXPECT_EQ(serial.counts.reads, parallel.counts.reads);
  EXPECT_EQ(serial.counts.writes, parallel.counts.writes);
  EXPECT_EQ(serial.distances.distances, parallel.distances.distances);
  EXPECT_EQ(serial.misses.element_misses, parallel.misses.element_misses);
  expect_stats_equal(serial.misses.total, parallel.misses.total);
  expect_stats_equal(serial.cache.total, parallel.cache.total);
  ASSERT_EQ(serial.element_stats.size(), parallel.element_stats.size());
  for (std::size_t c = 0; c < serial.element_stats.size(); ++c) {
    EXPECT_EQ(serial.element_stats[c].min, parallel.element_stats[c].min);
    EXPECT_EQ(serial.element_stats[c].median,
              parallel.element_stats[c].median);
    EXPECT_EQ(serial.element_stats[c].max, parallel.element_stats[c].max);
    EXPECT_EQ(serial.element_stats[c].cold_count,
              parallel.element_stats[c].cold_count);
  }
  EXPECT_EQ(serial.movement.bytes_per_container,
            parallel.movement.bytes_per_container);
  EXPECT_EQ(serial.movement.total_bytes, parallel.movement.total_bytes);
}

TEST(Determinism, RelatedAccessesBitIdenticalAcrossThreadCounts) {
  const ir::Sdfg sdfg = workloads::matmul();
  const AccessTrace trace =
      simulate(sdfg, symbolic::SymbolMap{{"M", 8}, {"N", 8}, {"K", 8}});
  const std::vector<Selection> selected{{0, {0, 5, 9}}};
  AccessCounts serial;
  {
    par::ThreadScope scope(1);
    serial = related_accesses(trace, selected);
  }
  AccessCounts parallel;
  {
    par::ThreadScope scope(8);
    parallel = related_accesses(trace, selected);
  }
  EXPECT_EQ(serial.reads, parallel.reads);
  EXPECT_EQ(serial.writes, parallel.writes);
}

TEST(Determinism, SweepMetricMatchesScalarEvaluation) {
  const ir::Sdfg sdfg =
      workloads::hdiff(workloads::HdiffVariant::Baseline);
  const symbolic::Expr metric = analysis::total_movement_bytes(sdfg);
  const symbolic::SymbolMap base{{"I", 16}, {"J", 16}, {"K", 4}};
  const std::vector<std::int64_t> values{2, 4, 8, 16, 32};
  par::ThreadScope scope(8);
  const auto series = analysis::sweep_metric(metric, base, "K", values);
  ASSERT_EQ(series.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    symbolic::SymbolMap binding = base;
    binding["K"] = values[i];
    EXPECT_EQ(series[i].value, values[i]);
    EXPECT_EQ(series[i].metric,
              static_cast<double>(metric.evaluate(binding)));
  }
}

}  // namespace
}  // namespace dmv::sim
