#include <gtest/gtest.h>

#include <random>

#include "dmv/sim/sim.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::sim {
namespace {

AccessTrace synthetic_trace(std::int64_t elements,
                            const std::vector<std::int64_t>& sequence) {
  AccessTrace trace;
  ConcreteLayout layout;
  layout.name = "A";
  layout.shape = {elements};
  layout.strides = {1};
  layout.element_size = 8;
  trace.containers = {"A"};
  trace.layouts = {layout};
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    AccessEvent event;
    event.container = 0;
    event.flat = sequence[i];
    event.timestep = static_cast<std::int64_t>(i);
    trace.events.push_back(event);
  }
  return trace;
}

TEST(ClassifyMisses, ColdVsCapacity) {
  // Line per element; capacity 2 lines; stream 0 1 2 0: the re-access to
  // 0 saw 2 distinct lines, so LRU with 2 lines evicted it.
  AccessTrace trace = synthetic_trace(8, {0, 1, 2, 0});
  StackDistanceResult distances = stack_distances(trace, 8);
  MissReport report = classify_misses(trace, distances, 2);
  EXPECT_EQ(report.total.cold, 3);
  EXPECT_EQ(report.total.capacity, 1);
  EXPECT_EQ(report.total.hits, 0);

  // With 3 resident lines the re-access hits.
  MissReport larger = classify_misses(trace, distances, 3);
  EXPECT_EQ(larger.total.cold, 3);
  EXPECT_EQ(larger.total.capacity, 0);
  EXPECT_EQ(larger.total.hits, 1);
}

TEST(ClassifyMisses, ElementAttribution) {
  AccessTrace trace = synthetic_trace(8, {0, 1, 2, 0});
  StackDistanceResult distances = stack_distances(trace, 8);
  MissReport report = classify_misses(trace, distances, 2);
  EXPECT_EQ(report.element_misses[0][0], 2);  // Cold + capacity.
  EXPECT_EQ(report.element_misses[0][1], 1);
  EXPECT_EQ(report.element_misses[0][3], 0);
}

TEST(ClassifyMisses, RejectsBadThreshold) {
  AccessTrace trace = synthetic_trace(4, {0});
  StackDistanceResult distances = stack_distances(trace, 8);
  EXPECT_THROW(classify_misses(trace, distances, 0), std::invalid_argument);
}

TEST(ClassifyMisses, MissStatsArithmetic) {
  MissStats stats{2, 3, 5};
  EXPECT_EQ(stats.misses(), 5);
  EXPECT_EQ(stats.accesses(), 10);
}

TEST(CacheSim, FullyAssociativeMatchesStackDistancePrediction) {
  // THE §V-F property: for a fully-associative LRU cache of T lines, an
  // access misses iff its stack distance is >= T or infinite. The
  // stack-distance classifier and the exact simulator must agree EXACTLY.
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::int64_t> element(0, 63);
  std::vector<std::int64_t> sequence(2000);
  for (auto& s : sequence) s = element(rng);
  AccessTrace trace = synthetic_trace(64, sequence);

  for (int line : {8, 64}) {
    StackDistanceResult distances = stack_distances(trace, line);
    for (std::int64_t lines_in_cache : {2, 4, 8, 16}) {
      MissReport predicted =
          classify_misses(trace, distances, lines_in_cache);
      CacheConfig config;
      config.line_size = line;
      config.total_size = lines_in_cache * line;
      config.ways = 0;  // Fully associative.
      CacheSimResult simulated = simulate_cache(trace, config);
      EXPECT_EQ(predicted.total.misses(), simulated.total.misses())
          << "line " << line << " cache lines " << lines_in_cache;
      EXPECT_EQ(predicted.total.cold, simulated.total.cold);
    }
  }
}

TEST(CacheSim, FullyAssociativeMatchesOnRealWorkloads) {
  for (auto variant :
       {workloads::HdiffVariant::Baseline,
        workloads::HdiffVariant::Reordered}) {
    ir::Sdfg sdfg = workloads::hdiff(variant);
    AccessTrace trace = simulate(sdfg, workloads::hdiff_local());
    StackDistanceResult distances = stack_distances(trace, 64);
    for (std::int64_t lines : {8, 32}) {
      MissReport predicted = classify_misses(trace, distances, lines);
      CacheConfig config{64, lines * 64, 0};
      CacheSimResult simulated = simulate_cache(trace, config);
      EXPECT_EQ(predicted.total.misses(), simulated.total.misses());
    }
  }
}

TEST(CacheSim, SetAssociativityAddsConflicts) {
  // Strided stream mapping to one set: direct-mapped thrashes where
  // fully-associative holds the working set.
  std::vector<std::int64_t> sequence;
  for (int round = 0; round < 50; ++round) {
    sequence.push_back(0);
    sequence.push_back(32);  // Same set in a 4-set direct-mapped cache.
  }
  AccessTrace trace = synthetic_trace(64, sequence);
  CacheConfig direct{8, 4 * 8, 1};  // 4 lines, direct mapped.
  CacheConfig full{8, 4 * 8, 0};
  const auto direct_misses = simulate_cache(trace, direct).total.misses();
  const auto full_misses = simulate_cache(trace, full).total.misses();
  EXPECT_GT(direct_misses, full_misses);
  EXPECT_EQ(full_misses, 2);  // Both lines fit: only the cold misses.
}

TEST(CacheSim, LruEvictionOrder) {
  // 2-line fully-associative cache, stream 0 1 0 2 1: the access to 2
  // evicts line 1 (LRU), so the final access to 1 misses.
  AccessTrace trace = synthetic_trace(8, {0, 1, 0, 2, 1});
  CacheConfig config{8, 16, 0};
  CacheSimResult result = simulate_cache(trace, config);
  EXPECT_EQ(result.total.cold, 3);
  EXPECT_EQ(result.total.capacity, 1);
  EXPECT_EQ(result.total.hits, 1);
}

TEST(CacheSim, RejectsBadGeometry) {
  AccessTrace trace = synthetic_trace(4, {0});
  EXPECT_THROW(simulate_cache(trace, CacheConfig{0, 64, 1}),
               std::invalid_argument);
  EXPECT_THROW(simulate_cache(trace, CacheConfig{64, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(simulate_cache(trace, CacheConfig{64, 64, 8}),
               std::invalid_argument);
  EXPECT_THROW(simulate_cache(trace, CacheConfig{64, 32, 0}),
               std::invalid_argument);
}

TEST(Movement, MissesTimesLineSize) {
  AccessTrace trace = synthetic_trace(8, {0, 1, 2, 0});
  StackDistanceResult distances = stack_distances(trace, 8);
  MissReport report = classify_misses(trace, distances, 2);
  MovementEstimate estimate = physical_movement(trace, report, 64);
  EXPECT_EQ(estimate.bytes_per_container[0], 4 * 64);
  EXPECT_EQ(estimate.total_bytes, 4 * 64);
}

TEST(Movement, PerContainerAttribution) {
  ir::Sdfg sdfg = workloads::conv2d();
  AccessTrace trace = simulate(sdfg, workloads::conv2d_fig4());
  StackDistanceResult distances = stack_distances(trace, 64);
  MissReport report = classify_misses(trace, distances, 8);
  MovementEstimate estimate = physical_movement(trace, report, 64);
  std::int64_t sum = 0;
  for (std::int64_t bytes : estimate.bytes_per_container) sum += bytes;
  EXPECT_EQ(sum, estimate.total_bytes);
  EXPECT_GT(estimate.total_bytes, 0);
}

TEST(Movement, PerEdgeRefinementApportionsByTraffic) {
  // Fig 5c semantics: each edge's physical estimate is its container's
  // miss bytes, apportioned by the edge's logical share; summing the
  // per-edge values over a container recovers the container total.
  ir::Sdfg sdfg = workloads::matmul();
  const symbolic::SymbolMap params = workloads::matmul_fig5();
  AccessTrace trace = simulate(sdfg, params);
  StackDistanceResult distances = stack_distances(trace, 64);
  MissReport report = classify_misses(trace, distances, 8);
  const ir::State& state = sdfg.states()[0];
  std::map<std::size_t, std::int64_t> per_edge =
      physical_edge_bytes(state, trace, report, params, 64);
  ASSERT_FALSE(per_edge.empty());

  std::map<std::string, std::int64_t> per_container;
  for (const auto& [edge_index, bytes] : per_edge) {
    per_container[state.edges()[edge_index].memlet.data] += bytes;
    EXPECT_GE(bytes, 0);
  }
  for (const auto& [name, bytes] : per_container) {
    const int container = trace.container_id(name);
    const std::int64_t expected =
        report.per_container[container].misses() * 64;
    // Integer apportioning may round down slightly per edge.
    EXPECT_LE(bytes, expected);
    EXPECT_GE(bytes, expected - 8);
  }
}

TEST(CacheSim, ThresholdSensitivityMonotone) {
  // Higher capacity threshold can only reduce predicted misses — the
  // knob the paper's UI exposes (§V-F b).
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  AccessTrace trace = simulate(sdfg, workloads::hdiff_local());
  StackDistanceResult distances = stack_distances(trace, 64);
  std::int64_t previous = std::numeric_limits<std::int64_t>::max();
  for (std::int64_t threshold : {2, 4, 8, 16, 32, 64, 128}) {
    const std::int64_t misses =
        classify_misses(trace, distances, threshold).total.misses();
    EXPECT_LE(misses, previous);
    previous = misses;
  }
}

}  // namespace
}  // namespace dmv::sim
