// Nested map scopes: builder construction (begin_map / end_map), and
// the full stack — validation, analysis, simulation, interpretation,
// rendering — over hierarchical SDFGs.

#include <gtest/gtest.h>

#include <random>

#include "dmv/analysis/analysis.hpp"
#include "dmv/builder/program_builder.hpp"
#include "dmv/exec/interpreter.hpp"
#include "dmv/ir/json_reader.hpp"
#include "dmv/ir/serialize.hpp"
#include "dmv/ir/validate.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::builder {
namespace {

// GEMM as maps-within-maps: an (i, j) map around a k-reduction map.
ir::Sdfg nested_matmul() {
  ProgramBuilder p("nested_matmul");
  p.symbols({"M", "K", "N"});
  p.array("A", {"M", "K"});
  p.array("B", {"K", "N"});
  p.array("C", {"M", "N"});
  p.state("compute");
  p.begin_map("rows_cols", {{"i", "0:M-1"}, {"j", "0:N-1"}});
  p.mapped_tasklet("reduce_k", {{"k", "0:K-1"}},
                   {{"a", "A", "i, k"}, {"b", "B", "k, j"}}, "o = a * b",
                   {{"o", "C", "i, j", ir::Wcr::Sum}});
  p.end_map();
  return p.take();
}

TEST(NestedMaps, StructureAndValidation) {
  ir::Sdfg sdfg = nested_matmul();
  EXPECT_TRUE(ir::validate(sdfg).empty());
  const ir::State& state = sdfg.states()[0];
  // Inner entry lives in the outer entry's scope.
  ir::NodeId outer = ir::kNoNode, inner = ir::kNoNode;
  for (const ir::Node& node : state.nodes()) {
    if (node.kind != ir::NodeKind::MapEntry) continue;
    if (node.scope_parent == ir::kNoNode) {
      outer = node.id;
    } else {
      inner = node.id;
    }
  }
  ASSERT_NE(outer, ir::kNoNode);
  ASSERT_NE(inner, ir::kNoNode);
  EXPECT_EQ(state.node(inner).scope_parent, outer);
  // The tasklet sits two scopes deep.
  for (const ir::Node& node : state.nodes()) {
    if (node.kind == ir::NodeKind::Tasklet) {
      EXPECT_EQ(state.scope_depth(node.id), 2);
    }
  }
}

TEST(NestedMaps, MemletPropagationPerLevel) {
  ir::Sdfg sdfg = nested_matmul();
  const ir::State& state = sdfg.states()[0];
  symbolic::SymbolMap env{{"M", 3}, {"K", 4}, {"N", 5}};
  // The access -> outer-entry edge for A covers the whole array; the
  // outer-entry -> inner-entry edge covers one row (i fixed, k widened);
  // the inner edge is a single element.
  for (const ir::Edge& edge : state.edges()) {
    if (edge.memlet.data != "A") continue;
    const ir::Node& src = state.node(edge.src);
    const ir::Node& dst = state.node(edge.dst);
    const std::int64_t footprint = [&] {
      // Bind map params to begins for single-element checks.
      symbolic::SymbolMap bound = env;
      bound["i"] = 0;
      bound["j"] = 0;
      bound["k"] = 0;
      return edge.memlet.subset.num_elements().evaluate(bound);
    }();
    if (src.kind == ir::NodeKind::Access) {
      EXPECT_EQ(footprint, 3 * 4);  // Whole A.
    } else if (dst.kind == ir::NodeKind::Tasklet) {
      EXPECT_EQ(footprint, 1);
    } else {
      EXPECT_EQ(footprint, 4);  // One row of A (k widened, i fixed).
    }
  }
}

TEST(NestedMaps, InterpreterMatchesFlatMatmul) {
  symbolic::SymbolMap env{{"M", 5}, {"K", 7}, {"N", 4}};
  std::mt19937 rng(21);
  std::uniform_real_distribution<double> value(-1, 1);
  std::vector<double> a(5 * 7), b(7 * 4);
  for (auto& x : a) x = value(rng);
  for (auto& x : b) x = value(rng);

  auto run = [&](ir::Sdfg& sdfg) {
    exec::Buffers buffers(sdfg, env);
    buffers.set_logical("A", a);
    buffers.set_logical("B", b);
    exec::run(sdfg, env, buffers);
    return buffers.logical("C");
  };
  ir::Sdfg nested = nested_matmul();
  ir::Sdfg flat = workloads::matmul(/*b_column_major=*/false);
  EXPECT_EQ(run(nested), run(flat));
}

TEST(NestedMaps, SimulationEventMultisetMatchesFlat) {
  symbolic::SymbolMap env{{"M", 4}, {"K", 3}, {"N", 5}};
  ir::Sdfg nested = nested_matmul();
  ir::Sdfg flat = workloads::matmul(/*b_column_major=*/false);
  sim::AccessTrace nested_trace = sim::simulate(nested, env);
  sim::AccessTrace flat_trace = sim::simulate(flat, env);
  EXPECT_EQ(nested_trace.events.size(), flat_trace.events.size());
  sim::AccessCounts nested_counts = sim::count_accesses(nested_trace);
  sim::AccessCounts flat_counts = sim::count_accesses(flat_trace);
  for (const char* name : {"A", "B", "C"}) {
    const int nc = nested_trace.container_id(name);
    const int fc = flat_trace.container_id(name);
    EXPECT_EQ(nested_counts.reads[nc], flat_counts.reads[fc]) << name;
    EXPECT_EQ(nested_counts.writes[nc], flat_counts.writes[fc]) << name;
  }
}

TEST(NestedMaps, VolumeAnalysisCountsEveryLevel) {
  ir::Sdfg sdfg = nested_matmul();
  symbolic::SymbolMap env{{"M", 3}, {"K", 4}, {"N", 5}};
  // Tasklet-adjacent traffic is identical to the flat formulation:
  // 3 events per (i, j, k).
  const ir::State& state = sdfg.states()[0];
  std::int64_t tasklet_adjacent = 0;
  for (const ir::Edge& edge : state.edges()) {
    if (edge.memlet.is_empty()) continue;
    if (state.node(edge.src).kind == ir::NodeKind::Tasklet ||
        state.node(edge.dst).kind == ir::NodeKind::Tasklet) {
      tasklet_adjacent +=
          analysis::total_edge_elements(state, edge).evaluate(env);
    }
  }
  EXPECT_EQ(tasklet_adjacent, 3 * 3 * 4 * 5);
  EXPECT_EQ(analysis::total_operations(sdfg).evaluate(env), 3 * 4 * 5);
}

TEST(NestedMaps, DeepNesting) {
  ProgramBuilder p("deep");
  p.symbols({"N"});
  p.array("A", {"N", "N", "N"});
  p.array("B", {"N", "N", "N"});
  p.state("s");
  p.begin_map("outer", {{"i", "0:N-1"}});
  p.begin_map("middle", {{"j", "0:N-1"}});
  p.mapped_tasklet("inner", {{"k", "0:N-1"}}, {{"v", "A", "i, j, k"}},
                   "o = v + 1", {{"o", "B", "i, j, k"}});
  p.end_map();
  p.end_map();
  ir::Sdfg sdfg = p.take();
  EXPECT_TRUE(ir::validate(sdfg).empty());

  symbolic::SymbolMap env{{"N", 3}};
  exec::Buffers buffers(sdfg, env);
  std::vector<double> a(27);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = i;
  buffers.set_logical("A", a);
  exec::run(sdfg, env, buffers);
  std::vector<double> b = buffers.logical("B");
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_DOUBLE_EQ(b[i], a[i] + 1);
  }

  // The outline reflects three nesting levels.
  std::string text = viz::outline(sdfg);
  EXPECT_NE(text.find("<map> outer"), std::string::npos);
  EXPECT_NE(text.find("      <map> middle"), std::string::npos);
}

TEST(NestedMaps, JsonRoundTripPreservesScopes) {
  ir::Sdfg original = nested_matmul();
  ir::Sdfg restored = ir::from_json(ir::to_json(original));
  EXPECT_TRUE(ir::validate(restored).empty());
  symbolic::SymbolMap env{{"M", 2}, {"K", 2}, {"N", 2}};
  sim::AccessTrace a = sim::simulate(original, env);
  sim::AccessTrace b = sim::simulate(restored, env);
  ASSERT_EQ(a.events.size(), b.events.size());
}

TEST(NestedMaps, ScopeDiscipline) {
  ProgramBuilder p("bad");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.state("s");
  EXPECT_THROW(p.end_map(), std::logic_error);
  p.begin_map("open", {{"i", "0:N-1"}});
  EXPECT_THROW(p.take(), std::logic_error);
  EXPECT_THROW(p.state("another"), std::logic_error);
  p.end_map();
}

TEST(NestedMaps, RenderingHandlesHierarchy) {
  ir::Sdfg sdfg = nested_matmul();
  std::string svg = viz::render_state_svg(sdfg.states()[0]);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Collapsing the OUTER map hides the inner one entirely.
  for (ir::Node& node : sdfg.states()[0].mutable_nodes()) {
    if (node.kind == ir::NodeKind::MapEntry &&
        node.scope_parent == ir::kNoNode) {
      node.map.collapsed = true;
    }
  }
  viz::StateLayout layout = viz::layout_state(sdfg.states()[0]);
  for (const viz::NodeBox& box : layout.nodes) {
    const ir::Node& node = sdfg.states()[0].node(box.id);
    EXPECT_TRUE(node.scope_parent == ir::kNoNode ||
                node.kind == ir::NodeKind::MapEntry);
  }
}

}  // namespace
}  // namespace dmv::builder
