#include <gtest/gtest.h>

#include "dmv/builder/program_builder.hpp"
#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::viz {
namespace {

TEST(HeatmapScale, LinearMinMax) {
  HeatmapScale scale = HeatmapScale::fit({10, 20, 30}, ScalingPolicy::Linear);
  EXPECT_DOUBLE_EQ(scale.normalize(10), 0.0);
  EXPECT_DOUBLE_EQ(scale.normalize(20), 0.5);
  EXPECT_DOUBLE_EQ(scale.normalize(30), 1.0);
  EXPECT_DOUBLE_EQ(scale.normalize(40), 1.0);  // Clamped.
}

TEST(HeatmapScale, MeanCenteredSaturatesOutliers) {
  // Fig 2 left: one huge outlier. Mean-centered puts the bulk of the
  // distribution in the cool half and the outlier saturates red.
  std::vector<double> values{1, 2, 3, 4, 1000};
  HeatmapScale scale = HeatmapScale::fit(values, ScalingPolicy::MeanCentered);
  EXPECT_NEAR(scale.center(), 202.0, 1e-9);
  EXPECT_LT(scale.normalize(4), 0.05);
  EXPECT_DOUBLE_EQ(scale.normalize(1000), 1.0);
}

TEST(HeatmapScale, MedianCenteredResistsOutliers) {
  // Fig 2 right: the same data, median-centered: the bulk spreads over
  // the scale instead of huddling at green.
  std::vector<double> values{1, 2, 3, 4, 1000};
  HeatmapScale scale =
      HeatmapScale::fit(values, ScalingPolicy::MedianCentered);
  EXPECT_DOUBLE_EQ(scale.center(), 3.0);
  EXPECT_DOUBLE_EQ(scale.normalize(3), 0.5);
  EXPECT_GT(scale.normalize(4), 0.5);
  EXPECT_DOUBLE_EQ(scale.normalize(1000), 1.0);
}

TEST(HeatmapScale, HistogramGivesDistinctColors) {
  // Fig 2 middle: every distinct observation gets its own position,
  // independent of value gaps.
  std::vector<double> values{1, 2, 2, 3, 1000};
  HeatmapScale scale = HeatmapScale::fit(values, ScalingPolicy::Histogram);
  EXPECT_EQ(scale.bucket_count(), 4u);
  EXPECT_DOUBLE_EQ(scale.normalize(1), 0.0);
  EXPECT_DOUBLE_EQ(scale.normalize(2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(scale.normalize(3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(scale.normalize(1000), 1.0);
}

TEST(HeatmapScale, ExponentialCompressesMagnitudes) {
  HeatmapScale scale =
      HeatmapScale::fit({1, 10, 100, 1000}, ScalingPolicy::Exponential);
  EXPECT_NEAR(scale.normalize(10), 1.0 / 3.0, 0.01);
  EXPECT_NEAR(scale.normalize(100), 2.0 / 3.0, 0.01);
}

TEST(HeatmapScale, EmptyAndDegenerate) {
  HeatmapScale empty = HeatmapScale::fit({}, ScalingPolicy::Linear);
  EXPECT_DOUBLE_EQ(empty.normalize(5), 0.0);
  HeatmapScale single = HeatmapScale::fit({7}, ScalingPolicy::Histogram);
  EXPECT_DOUBLE_EQ(single.normalize(7), 0.0);
  HeatmapScale zeros = HeatmapScale::fit({0, 0}, ScalingPolicy::MeanCentered);
  EXPECT_DOUBLE_EQ(zeros.normalize(0), 0.0);
}

TEST(HeatmapScale, PolicyNames) {
  EXPECT_EQ(to_string(ScalingPolicy::MeanCentered), "mean");
  EXPECT_EQ(to_string(ScalingPolicy::Histogram), "histogram");
}

TEST(ColorMap, GreenYellowRedEndpoints) {
  Rgb cold = sample_color(0.0, ColorScheme::GreenYellowRed);
  Rgb mid = sample_color(0.5, ColorScheme::GreenYellowRed);
  Rgb hot = sample_color(1.0, ColorScheme::GreenYellowRed);
  EXPECT_GT(cold.g, cold.r);  // Green.
  EXPECT_GT(mid.r, 200);      // Yellow: strong red+green.
  EXPECT_GT(mid.g, 180);
  EXPECT_GT(hot.r, hot.g);  // Red.
  EXPECT_EQ(sample_color(-1.0, ColorScheme::GreenYellowRed).hex(),
            cold.hex());
  EXPECT_EQ(sample_color(2.0, ColorScheme::GreenYellowRed).hex(),
            hot.hex());
}

TEST(ColorMap, ViridisMonotoneLuminance) {
  double previous = -1;
  for (double t = 0; t <= 1.0; t += 0.1) {
    Rgb c = sample_color(t, ColorScheme::Viridis);
    const double luminance = 0.2126 * c.r + 0.7152 * c.g + 0.0722 * c.b;
    EXPECT_GT(luminance, previous);
    previous = luminance;
  }
}

TEST(ColorMap, HexFormat) {
  EXPECT_EQ((Rgb{255, 0, 16}).hex(), "#ff0010");
  EXPECT_EQ((Rgb{0, 0, 0}).hex(), "#000000");
}

TEST(GraphLayout, RespectsEdgeDirection) {
  ir::Sdfg sdfg = workloads::outer_product();
  StateLayout layout = layout_state(sdfg.states()[0]);
  EXPECT_EQ(layout.nodes.size(), sdfg.states()[0].num_nodes());
  for (const EdgePath& edge : layout.edges) {
    EXPECT_LT(edge.y1, edge.y2) << "edges must flow downward";
  }
  EXPECT_GT(layout.width, 0);
  EXPECT_GT(layout.height, 0);
}

TEST(GraphLayout, NoOverlapWithinLayers) {
  ir::Sdfg sdfg = workloads::bert_encoder(workloads::BertStage::Baseline);
  StateLayout layout = layout_state(sdfg.states()[0]);
  for (const NodeBox& a : layout.nodes) {
    for (const NodeBox& b : layout.nodes) {
      if (a.id >= b.id || a.y != b.y) continue;
      const double gap = std::abs(a.x - b.x) -
                         (a.width + b.width) / 2.0;
      EXPECT_GT(gap, -1.0) << "nodes " << a.id << " and " << b.id;
    }
  }
}

TEST(GraphLayout, CollapsedScopeHidesBody) {
  ir::Sdfg sdfg = workloads::outer_product();
  ir::State& state = sdfg.states()[0];
  for (ir::Node& node : state.mutable_nodes()) {
    if (node.kind == ir::NodeKind::MapEntry) node.map.collapsed = true;
  }
  StateLayout collapsed = layout_state(state);
  StateLayout expanded =
      layout_state(state, LayoutOptions{30, 50, /*respect=*/false});
  EXPECT_LT(collapsed.nodes.size(), expanded.nodes.size());
  // The tasklet is hidden; the map entry box remains.
  for (const NodeBox& box : collapsed.nodes) {
    EXPECT_NE(state.node(box.id).kind, ir::NodeKind::Tasklet);
  }
}

TEST(GraphLayout, FindBox) {
  ir::Sdfg sdfg = workloads::outer_product();
  StateLayout layout = layout_state(sdfg.states()[0]);
  EXPECT_NE(layout.find(0), nullptr);
  EXPECT_EQ(layout.find(999), nullptr);
}

TEST(RenderSvg, ContainsShapesAndHeat) {
  ir::Sdfg sdfg = workloads::outer_product();
  GraphRenderOptions options;
  options.edge_heat[0] = 1.0;
  options.edge_label[0] = "12 B";
  std::string svg = render_state_svg(sdfg.states()[0], options);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("<ellipse"), std::string::npos);   // Access nodes.
  EXPECT_NE(svg.find("<polygon"), std::string::npos);   // Map trapezoids.
  EXPECT_NE(svg.find("<rect"), std::string::npos);      // Tasklet.
  EXPECT_NE(svg.find("12 B"), std::string::npos);       // Edge label.
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(RenderSvg, HeatColorsAppear) {
  ir::Sdfg sdfg = workloads::outer_product();
  GraphRenderOptions options;
  for (std::size_t e = 0; e < sdfg.states()[0].edges().size(); ++e) {
    options.edge_heat[e] = 1.0;
  }
  std::string svg = render_state_svg(sdfg.states()[0], options);
  const std::string hot = sample_color(1.0, options.scheme).hex();
  EXPECT_NE(svg.find(hot), std::string::npos);
}

TEST(RenderTiles, GridGeometryAndContents) {
  layout::ConcreteLayout layout;
  layout.name = "C";
  layout.shape = {3, 4};
  layout.strides = {4, 1};
  layout.element_size = 8;
  std::vector<std::int64_t> counts{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  std::vector<double> heat(12, 0.5);
  TileRenderOptions options;
  options.counts = &counts;
  options.heat = &heat;
  options.highlighted = {5};
  options.selected = {7};
  std::string svg = render_tiles_svg(layout, options);
  // 12 tiles, name label, a highlight fill, a selection stroke.
  EXPECT_EQ(svg.find("#39b54a") == std::string::npos, false);
  EXPECT_NE(svg.find(">C<"), std::string::npos);
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    pos += 5;
  }
  EXPECT_EQ(rects, 12u);
  EXPECT_NE(svg.find("accesses: 11"), std::string::npos);
}

TEST(RenderTiles, FourDimensionalNesting) {
  // Fig 4a: the 4-D weight tensor renders every element exactly once.
  layout::ConcreteLayout layout;
  layout.name = "w";
  layout.shape = {2, 3, 3, 3};
  layout.strides = {27, 9, 3, 1};
  layout.element_size = 8;
  std::string svg = render_tiles_svg(layout);
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    pos += 5;
  }
  EXPECT_EQ(rects, 54u);
}

TEST(RenderTiles, OneDimensional) {
  layout::ConcreteLayout layout;
  layout.name = "A";
  layout.shape = {5};
  layout.strides = {1};
  layout.element_size = 8;
  std::string svg = render_tiles_svg(layout);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
}

TEST(RenderHistogram, BarsAndColdMisses) {
  HistogramRenderOptions options;
  options.title = "reuse distances";
  options.cold_misses = 1;
  std::string svg =
      render_histogram_svg({0, 0, 1, 2, 2, 2, 8}, options);
  EXPECT_NE(svg.find("reuse distances"), std::string::npos);
  EXPECT_NE(svg.find("1 cold miss"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
}

TEST(RenderHistogram, EmptyValuesStillValid) {
  std::string svg = render_histogram_svg({});
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(AsciiHeatmap, RendersGrid) {
  layout::ConcreteLayout layout;
  layout.name = "A";
  layout.shape = {2, 3};
  layout.strides = {3, 1};
  layout.element_size = 8;
  std::vector<double> heat{0, 0.5, 1.0, 1.0, 0.5, 0};
  std::string art = ascii_heatmap(layout, heat);
  EXPECT_EQ(art, " +@\n@+ \n");
}

TEST(AsciiHeatmap, PrefixSelectsSlice) {
  layout::ConcreteLayout layout;
  layout.name = "A";
  layout.shape = {2, 2, 2};
  layout.strides = {4, 2, 1};
  layout.element_size = 8;
  std::vector<double> heat{0, 0, 0, 0, 1, 1, 1, 1};
  EXPECT_EQ(ascii_heatmap(layout, heat, {1}), "@@\n@@\n");
  EXPECT_THROW(ascii_heatmap(layout, heat, {}), std::invalid_argument);
  EXPECT_THROW(ascii_heatmap(layout, {0.0}, {1}), std::invalid_argument);
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "value"});
  table.add_row({"x", "10"});
  table.add_row({"longer", "3"});
  std::string out = table.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| longer"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Outline, ListsHierarchy) {
  ir::Sdfg sdfg = workloads::outer_product();
  std::string text = outline(sdfg);
  EXPECT_NE(text.find("SDFG outer_product"), std::string::npos);
  EXPECT_NE(text.find("<map> outer"), std::string::npos);
  EXPECT_NE(text.find("[tasklet] outer"), std::string::npos);
  EXPECT_NE(text.find("(access) C"), std::string::npos);
}

TEST(RenderSdfg, MultiStateComposition) {
  // A two-state program renders as two labeled frames with a connector.
  dmv::builder::ProgramBuilder p("two_states");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.transient("T", {"N"});
  p.array("B", {"N"});
  p.state("first");
  p.mapped_tasklet("inc", {{"i", "0:N-1"}}, {{"v", "A", "i"}}, "o = v + 1",
                   {{"o", "T", "i"}});
  p.state("second");
  p.mapped_tasklet("dbl", {{"i", "0:N-1"}}, {{"v", "T", "i"}}, "o = v * 2",
                   {{"o", "B", "i"}});
  ir::Sdfg sdfg = p.take();
  std::string svg = render_sdfg_svg(sdfg);
  EXPECT_NE(svg.find("SDFG two_states"), std::string::npos);
  EXPECT_NE(svg.find("state first"), std::string::npos);
  EXPECT_NE(svg.find("state second"), std::string::npos);
  // Exactly one closing tag: the state bodies were inlined, not nested
  // as complete documents.
  EXPECT_EQ(svg.find("</svg>"), svg.rfind("</svg>"));
}

TEST(RenderSdfg, PerStateOptionsApply) {
  ir::Sdfg sdfg = workloads::outer_product();
  GraphRenderOptions hot;
  hot.edge_heat[0] = 1.0;
  std::map<int, GraphRenderOptions> per_state{{0, hot}};
  std::string svg = render_sdfg_svg(sdfg, per_state);
  const std::string hot_hex =
      sample_color(1.0, ColorScheme::GreenYellowRed).hex();
  EXPECT_NE(svg.find(hot_hex), std::string::npos);
}

TEST(Minimap, ContainsViewportRectangle) {
  ir::Sdfg sdfg = workloads::outer_product();
  std::string svg = render_minimap_svg(sdfg.states()[0], 10, 20, 100, 80);
  EXPECT_NE(svg.find("stroke=\"#1565c0\""), std::string::npos);
}

}  // namespace
}  // namespace dmv::viz
