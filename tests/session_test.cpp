// Session-layer contract tests: cache accounting, dependency-restricted
// invalidation, byte-budgeted LRU eviction, prefetch-vs-cold
// bit-identity, and thread-count determinism. The overarching invariant
// is that a Session is a pure performance layer — every artifact equals
// the uncached evaluation bit for bit, no matter the cache or thread
// schedule.

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dmv/analysis/analysis.hpp"
#include "dmv/par/par.hpp"
#include "dmv/session/session.hpp"
#include "dmv/sim/pipeline.hpp"
#include "dmv/transforms/transforms.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::session {
namespace {

using sim::PipelineResult;
using symbolic::SymbolMap;

SessionConfig test_config() {
  SessionConfig config;
  config.pipeline.counts = true;
  config.pipeline.miss_threshold_lines = 8;
  config.pipeline.element_stats = true;
  config.pipeline.keep_distances = true;
  config.pipeline.movement = true;
  config.prefetch = false;  // Tests opt in explicitly.
  return config;
}

ir::Sdfg small_hdiff() {
  return workloads::hdiff(workloads::HdiffVariant::Baseline);
}

SymbolMap small_binding(std::int64_t k = 3) {
  return SymbolMap{{"I", 4}, {"J", 4}, {"K", k}};
}

void expect_identical(const PipelineResult& a, const PipelineResult& b) {
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.counts.reads, b.counts.reads);
  EXPECT_EQ(a.counts.writes, b.counts.writes);
  EXPECT_EQ(a.distances.line_size, b.distances.line_size);
  EXPECT_EQ(a.distances.distances, b.distances.distances);
  EXPECT_EQ(a.misses.threshold_lines, b.misses.threshold_lines);
  EXPECT_EQ(a.misses.element_misses, b.misses.element_misses);
  EXPECT_EQ(a.misses.total.cold, b.misses.total.cold);
  EXPECT_EQ(a.misses.total.capacity, b.misses.total.capacity);
  EXPECT_EQ(a.misses.total.hits, b.misses.total.hits);
  ASSERT_EQ(a.element_stats.size(), b.element_stats.size());
  for (std::size_t c = 0; c < a.element_stats.size(); ++c) {
    EXPECT_EQ(a.element_stats[c].min, b.element_stats[c].min);
    EXPECT_EQ(a.element_stats[c].median, b.element_stats[c].median);
    EXPECT_EQ(a.element_stats[c].max, b.element_stats[c].max);
    EXPECT_EQ(a.element_stats[c].cold_count, b.element_stats[c].cold_count);
  }
  EXPECT_EQ(a.movement.line_size, b.movement.line_size);
  EXPECT_EQ(a.movement.bytes_per_container, b.movement.bytes_per_container);
  EXPECT_EQ(a.movement.total_bytes, b.movement.total_bytes);
}

// Uncached reference: a fresh pipeline per call, no memoization anywhere.
PipelineResult uncached(const ir::Sdfg& sdfg, const SymbolMap& binding,
                        const SessionConfig& config) {
  sim::MetricPipeline pipeline(config.pipeline);
  return config.streaming
             ? pipeline.run_streaming(sdfg, binding, config.simulation)
             : pipeline.run(sdfg, binding, config.simulation);
}

TEST(SessionTest, HitMissAccounting) {
  Session session(small_hdiff(), test_config());
  session.set_binding(small_binding(3));

  auto first = session.metrics();
  EXPECT_EQ(session.stats().misses, 1);
  EXPECT_EQ(session.stats().hits, 0);

  auto second = session.metrics();
  EXPECT_EQ(session.stats().misses, 1);
  EXPECT_EQ(session.stats().hits, 1);
  expect_identical(*first, *second);
  // Cached artifacts are shared, not copied.
  EXPECT_EQ(first.get(), second.get());

  session.set_symbol("K", 4);
  auto third = session.metrics();
  EXPECT_EQ(session.stats().misses, 2);

  session.set_symbol("K", 3);
  auto fourth = session.metrics();
  EXPECT_EQ(session.stats().misses, 2);
  EXPECT_EQ(session.stats().hits, 2);
  expect_identical(*first, *fourth);
  EXPECT_NE(third->events, 0);
  EXPECT_GT(session.stats().cache_entries, 0u);
  EXPECT_GT(session.stats().cache_bytes, 0u);

  // Phase breakdown: the two misses ran the pipeline, so wall time
  // accumulated and a partition count was recorded; the cache hits in
  // between added nothing (simulate_ms + metrics_ms covers exactly the
  // evaluated steps).
  EXPECT_GE(session.stats().simulate_ms + session.stats().metrics_ms, 0.0);
  EXPECT_GE(session.stats().metric_partitions, 1);
}

TEST(SessionTest, ResultsMatchUncachedEvaluation) {
  const SessionConfig config = test_config();
  Session session(small_hdiff(), config);
  for (std::int64_t k : {2, 3, 4, 3, 2}) {
    session.set_symbol("I", 4);
    session.set_symbol("J", 4);
    session.set_symbol("K", k);
    expect_identical(*session.metrics(),
                     uncached(small_hdiff(), small_binding(k), config));
  }
}

TEST(SessionTest, UnusedSymbolDoesNotInvalidate) {
  ir::Sdfg sdfg = small_hdiff();
  sdfg.add_symbol("UNUSED");  // Declared but reaches nothing.
  Session session(std::move(sdfg), test_config());

  // The reachability analysis excludes the unused symbol...
  EXPECT_EQ(session.metric_symbols(),
            (std::set<std::string>{"I", "J", "K"}));

  SymbolMap binding = small_binding(3);
  binding["UNUSED"] = 1;
  session.set_binding(binding);
  auto metrics = session.metrics();
  auto svg = session.graph_svg(0);
  const SessionStats cold = session.stats();

  // ...so moving it must hit every cached artifact: no eviction, no
  // recomputation — the restricted key did not change.
  session.set_symbol("UNUSED", 99);
  auto metrics_again = session.metrics();
  auto svg_again = session.graph_svg(0);
  EXPECT_EQ(session.stats().misses, cold.misses);
  EXPECT_EQ(metrics.get(), metrics_again.get());
  EXPECT_EQ(svg.get(), svg_again.get());

  // A reached symbol does invalidate the metrics...
  session.set_symbol("K", 4);
  session.metrics();
  EXPECT_GT(session.stats().misses, cold.misses);
}

TEST(SessionTest, SymbolicArtifactsSurviveResimulation) {
  Session session(small_hdiff(), test_config());
  session.set_binding(small_binding(3));
  auto volume = session.movement_volume();
  auto layout = session.layout(0);

  for (std::int64_t k : {4, 5, 6}) {
    session.set_symbol("K", k);
    session.metrics();
    // Binding-independent artifacts: same shared object, no recompute.
    EXPECT_EQ(session.movement_volume().get(), volume.get());
    EXPECT_EQ(session.layout(0).get(), layout.get());
  }

  // movement_bytes is keyed by the symbols the volume reaches.
  const std::int64_t at6 = session.movement_bytes();
  const SessionStats before = session.stats();
  EXPECT_EQ(session.movement_bytes(), at6);  // Hit.
  EXPECT_EQ(session.stats().misses, before.misses);
  SymbolMap expected_binding = small_binding(6);
  EXPECT_EQ(at6, volume->evaluate(expected_binding));
}

TEST(SessionTest, ProgramEditChangesContentHash) {
  const SessionConfig config = test_config();
  Session session(small_hdiff(), config);
  session.set_binding(small_binding(3));
  auto baseline = session.metrics();
  auto baseline_volume = session.movement_volume();

  session.edit_program([](ir::Sdfg& sdfg) {
    transforms::permute_dimensions(sdfg, "in_field", {2, 0, 1});
  });
  auto permuted = session.metrics();
  // metrics + movement_volume before the edit, metrics after: the edited
  // program hashes to a new content key, so the third call cannot hit.
  EXPECT_EQ(session.stats().misses, 3);
  EXPECT_EQ(session.stats().hits, 0);
  // The permuted layout changes physical reuse, hence the metrics.
  ir::Sdfg reference = small_hdiff();
  transforms::permute_dimensions(reference, "in_field", {2, 0, 1});
  expect_identical(*permuted, uncached(reference, small_binding(3), config));
  // Symbolic volume is recomputed for the new program version.
  EXPECT_NE(session.movement_volume().get(), baseline_volume.get());
  EXPECT_NE(baseline.get(), permuted.get());
}

TEST(SessionTest, LruEvictionUnderTinyByteBudget) {
  SessionConfig config = test_config();
  config.cache_budget_bytes = 1;  // Every insert evicts its predecessors.
  Session session(small_hdiff(), config);

  for (std::int64_t k : {2, 3, 4, 2, 3, 4}) {
    session.set_binding(small_binding(k));
    expect_identical(*session.metrics(),
                     uncached(small_hdiff(), small_binding(k), config));
  }
  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.misses, 6);  // Nothing survives the budget...
  EXPECT_EQ(stats.hits, 0);
  EXPECT_GT(stats.evictions, 0);
  EXPECT_EQ(stats.cache_entries, 1u);  // ...except the newest entry.
}

TEST(SessionTest, PrefetchVsColdBitIdentity) {
  // Prefetch only runs with workers to spare (it is pure added latency
  // at one thread), so pin a multi-worker knob for this test.
  par::ThreadScope scope(4);
  SessionConfig cold_config = test_config();
  SessionConfig prefetch_config = test_config();
  prefetch_config.prefetch = true;
  prefetch_config.prefetch_depth = 2;

  Session cold(small_hdiff(), cold_config);
  Session warm(small_hdiff(), prefetch_config);
  cold.set_binding(small_binding(2));
  warm.set_binding(small_binding(2));

  // A forward slider drag: after the first move establishes the stride,
  // the prefetcher should stay ahead of the slider.
  for (std::int64_t k = 2; k <= 8; ++k) {
    cold.set_symbol("K", k);
    warm.set_symbol("K", k);
    expect_identical(*warm.metrics(), *cold.metrics());
  }
  EXPECT_GT(warm.stats().prefetch_issued, 0);
  EXPECT_GT(warm.stats().prefetch_hits, 0);
  // Prefetching converts misses into hits; it must never add misses.
  EXPECT_LT(warm.stats().misses, cold.stats().misses);
}

TEST(SessionDeterminismTest, OneVsEightThreadsBitIdentical) {
  SessionConfig config = test_config();
  config.prefetch = true;
  config.prefetch_depth = 3;

  auto sweep = [&](int threads) {
    par::ThreadScope scope(threads);
    Session session(small_hdiff(), config);
    session.set_binding(small_binding(2));
    std::vector<std::shared_ptr<const PipelineResult>> results;
    for (std::int64_t k = 2; k <= 7; ++k) {
      session.set_symbol("K", k);
      results.push_back(session.metrics());
    }
    return std::make_pair(std::move(results), session.stats());
  };

  auto [serial, serial_stats] = sweep(1);
  auto [four, four_stats] = sweep(4);
  auto [eight, eight_stats] = sweep(8);
  ASSERT_EQ(serial.size(), eight.size());
  ASSERT_EQ(four.size(), eight.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(*serial[i], *four[i]);
    expect_identical(*serial[i], *eight[i]);
  }
  // At one thread speculation is skipped entirely (it would serialize in
  // front of the next interaction) and the stats say so.
  EXPECT_EQ(serial_stats.prefetch, "skipped (1 worker)");
  EXPECT_EQ(serial_stats.prefetch_issued, 0);
  EXPECT_EQ(serial_stats.prefetch_hits, 0);
  // Across multi-worker thread counts the cache schedule (hits, misses,
  // insertions, evictions) is thread-count independent: prefetch results
  // are inserted serially in candidate order.
  EXPECT_EQ(four_stats.prefetch, "speculative");
  EXPECT_EQ(eight_stats.prefetch, "speculative");
  EXPECT_GT(eight_stats.prefetch_issued, 0);
  EXPECT_EQ(four_stats.hits, eight_stats.hits);
  EXPECT_EQ(four_stats.misses, eight_stats.misses);
  EXPECT_EQ(four_stats.prefetch_issued, eight_stats.prefetch_issued);
  EXPECT_EQ(four_stats.prefetch_hits, eight_stats.prefetch_hits);
  EXPECT_EQ(four_stats.evictions, eight_stats.evictions);
  EXPECT_EQ(four_stats.cache_entries, eight_stats.cache_entries);
  EXPECT_EQ(four_stats.cache_bytes, eight_stats.cache_bytes);
  // Prefetch-skip only changes WHEN work happens, never the artifacts:
  // the serial sweep recomputes what the parallel sweeps prefetched.
  EXPECT_EQ(serial_stats.hits + serial_stats.misses,
            eight_stats.hits + eight_stats.misses);
}

TEST(SessionTest, GraphSvgReusesLayoutAcrossBindings) {
  Session session(small_hdiff(), test_config());
  session.set_binding(small_binding(3));
  auto svg3 = session.graph_svg(0);
  EXPECT_EQ(session.graph_svg(0).get(), svg3.get());  // Same binding: hit.
  session.set_symbol("K", 4);
  auto svg4 = session.graph_svg(0);
  // K reaches the hdiff volumes, so the render is keyed separately (a
  // distinct cache entry even though hdiff's fit-normalized heat happens
  // to produce identical bytes — every volume shares the factor K-1).
  EXPECT_NE(svg3.get(), svg4.get());
  const SessionStats stats = session.stats();
  session.layout(0);
  EXPECT_EQ(session.graph_svg(0).get(), svg4.get());
  // Layout is binding-independent: re-rendering at K=4 reused the cached
  // layout, and asking for it directly adds no miss.
  EXPECT_EQ(session.stats().misses, stats.misses);
}

TEST(SessionTest, SimulationSymbolsReachability) {
  ir::Sdfg sdfg = small_hdiff();
  sdfg.add_symbol("UNUSED");
  const std::set<std::string> reached = analysis::simulation_symbols(sdfg);
  EXPECT_EQ(reached, (std::set<std::string>{"I", "J", "K"}));

  // The expression-level query the analysis is built from.
  const symbolic::Expr expr =
      symbolic::Expr::symbol("I") * 4 + symbolic::Expr::symbol("K");
  EXPECT_TRUE(expr.depends_on("I"));
  EXPECT_TRUE(expr.depends_on("K"));
  EXPECT_FALSE(expr.depends_on("J"));
  EXPECT_TRUE(symbolic::depends_on_any(expr, {"J", "K"}));
  EXPECT_FALSE(symbolic::depends_on_any(expr, {"J", "UNUSED"}));
}

}  // namespace
}  // namespace dmv::session
