#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "dmv/symbolic/compiled.hpp"
#include "dmv/symbolic/expr.hpp"
#include "dmv/symbolic/parser.hpp"

namespace dmv::symbolic {
namespace {

const std::vector<std::string> kSymbols{"N", "M", "K", "i", "j"};

// Random expression tree over the shared symbol pool. Pow exponents are
// small non-negative constants so values stay in int64 range; everything
// else is unconstrained — division by zero is part of the contract being
// tested (both engines must throw std::domain_error on the same inputs).
Expr random_expr(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> leaf_pick(0, 1);
  std::uniform_int_distribution<std::int64_t> constant(-5, 5);
  std::uniform_int_distribution<std::size_t> symbol(0, kSymbols.size() - 1);
  if (depth <= 0 || std::uniform_int_distribution<int>(0, 3)(rng) == 0) {
    return leaf_pick(rng) == 0 ? Expr::constant(constant(rng))
                               : Expr::symbol(kSymbols[symbol(rng)]);
  }
  std::uniform_int_distribution<int> kind_pick(0, 7);
  const ExprKind kinds[] = {ExprKind::Add,     ExprKind::Mul,
                            ExprKind::FloorDiv, ExprKind::CeilDiv,
                            ExprKind::Mod,     ExprKind::Min,
                            ExprKind::Max,     ExprKind::Pow};
  const ExprKind kind = kinds[kind_pick(rng)];
  if (kind == ExprKind::Pow) {
    std::uniform_int_distribution<std::int64_t> exponent(0, 3);
    return Expr::make(kind,
                      {random_expr(rng, depth - 1), Expr(exponent(rng))});
  }
  std::vector<Expr> operands;
  const int arity =
      (kind == ExprKind::Add || kind == ExprKind::Mul)
          ? std::uniform_int_distribution<int>(2, 3)(rng)
          : 2;
  for (int i = 0; i < arity; ++i) {
    operands.push_back(random_expr(rng, depth - 1));
  }
  return Expr::make(kind, std::move(operands));
}

std::optional<std::int64_t> guarded(const Expr& expr, const SymbolMap& map) {
  try {
    return expr.evaluate(map);
  } catch (const std::domain_error&) {
    return std::nullopt;
  }
}

std::optional<std::int64_t> guarded(const CompiledExpr& compiled,
                                    const std::vector<std::int64_t>& env) {
  try {
    return compiled.evaluate(env);
  } catch (const std::domain_error&) {
    return std::nullopt;
  }
}

TEST(CompiledExpr, MatchesTreeEvaluationOnRandomExpressions) {
  std::mt19937 rng(20260806);
  std::uniform_int_distribution<std::int64_t> value(-10, 10);
  for (int trial = 0; trial < 2000; ++trial) {
    const Expr expr = random_expr(rng, 4);
    SymbolTable table;
    const CompiledExpr compiled = CompiledExpr::compile(expr, table);

    SymbolMap binding;
    for (const std::string& name : kSymbols) binding[name] = value(rng);
    std::vector<std::int64_t> env(table.size());
    for (std::size_t slot = 0; slot < table.size(); ++slot) {
      env[slot] = binding.at(table.names()[slot]);
    }

    const auto expected = guarded(expr, binding);
    const auto actual = guarded(compiled, env);
    ASSERT_EQ(expected.has_value(), actual.has_value())
        << "trial " << trial << ": " << expr.to_string();
    if (expected) {
      ASSERT_EQ(*expected, *actual)
          << "trial " << trial << ": " << expr.to_string();
    }
  }
}

TEST(CompiledExpr, ConstantExpressionNeedsNoEnvironment) {
  SymbolTable table;
  const CompiledExpr compiled =
      CompiledExpr::compile(parse("(3 + 4) * 2 - 1"), table);
  EXPECT_TRUE(compiled.is_constant());
  EXPECT_EQ(compiled.constant_value(), 13);
  EXPECT_TRUE(compiled.slots().empty());
  EXPECT_EQ(compiled.evaluate(nullptr), 13);
}

TEST(CompiledExpr, SlotsAreDeduplicatedAndSorted) {
  SymbolTable table;
  const CompiledExpr compiled =
      CompiledExpr::compile(parse("N * M + N * N + M"), table);
  ASSERT_EQ(compiled.slots().size(), 2u);
  EXPECT_LT(compiled.slots()[0], compiled.slots()[1]);
  EXPECT_EQ(table.size(), 2u);
}

TEST(CompiledExpr, SymbolTableSharesSlotsAcrossExpressions) {
  SymbolTable table;
  const CompiledExpr a = CompiledExpr::compile(parse("N + K"), table);
  const CompiledExpr b = CompiledExpr::compile(parse("K * 2"), table);
  // K got one slot; both programs read it from the same place.
  const int k = table.lookup("K");
  ASSERT_GE(k, 0);
  std::vector<std::int64_t> env(table.size(), 0);
  env[static_cast<std::size_t>(table.lookup("N"))] = 10;
  env[static_cast<std::size_t>(k)] = 7;
  EXPECT_EQ(a.evaluate(env), 17);
  EXPECT_EQ(b.evaluate(env), 14);
}

TEST(CompiledExpr, CheckedEvaluateReportsUnboundSymbolByName) {
  SymbolTable table;
  const CompiledExpr compiled = CompiledExpr::compile(parse("N + M"), table);
  std::vector<std::int64_t> env;
  std::vector<char> bound;
  table.bind(SymbolMap{{"N", 3}}, env, bound);
  try {
    compiled.evaluate(env.data(), bound.data(), &table.names());
    FAIL() << "expected UnboundSymbolError";
  } catch (const UnboundSymbolError& error) {
    EXPECT_EQ(error.symbol(), "M");
  }
  // Binding the missing symbol makes the same call succeed.
  env[static_cast<std::size_t>(table.lookup("M"))] = 4;
  bound[static_cast<std::size_t>(table.lookup("M"))] = 1;
  EXPECT_EQ(compiled.evaluate(env.data(), bound.data(), &table.names()), 7);
}

TEST(CompiledExpr, CompileMemoIsBounded) {
  // A long-lived table compiling an unbounded stream of distinct
  // expressions must not grow its memo without bound: at the cap it is
  // cleared wholesale (the interner's substitution-memo discipline).
  SymbolTable table;
  const std::size_t cap = SymbolTable::kCompileMemoCap;
  for (std::size_t n = 0; n < cap + 100; ++n) {
    CompiledExpr::compile(
        Expr::constant(static_cast<std::int64_t>(n)) + Expr::symbol("N"),
        table);
    ASSERT_LE(table.memo_size(), cap);
  }
  // Compilation after eviction still produces working programs (and
  // re-memoizes them).
  const CompiledExpr again = CompiledExpr::compile(parse("N + 1"), table);
  std::vector<std::int64_t> env(table.size(), 0);
  env[static_cast<std::size_t>(table.lookup("N"))] = 41;
  EXPECT_EQ(again.evaluate(env), 42);
  EXPECT_GT(table.memo_size(), 0u);
}

TEST(CompiledExpr, DeepExpressionExceedsInlineStack) {
  // Chain deep enough to exercise the heap-stack fallback (inline
  // capacity is 32).
  Expr expr = Expr::symbol("N");
  for (int i = 0; i < 80; ++i) {
    expr = Expr::make(ExprKind::Min, {Expr(1000 + i), expr});
  }
  SymbolTable table;
  const CompiledExpr compiled = CompiledExpr::compile(expr, table);
  std::vector<std::int64_t> env(table.size(), 42);
  EXPECT_EQ(compiled.evaluate(env), expr.evaluate(SymbolMap{{"N", 42}}));
}

}  // namespace
}  // namespace dmv::symbolic
