#include <gtest/gtest.h>

#include "dmv/sim/sim.hpp"
#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::viz {
namespace {

layout::ConcreteLayout grid(std::int64_t rows, std::int64_t cols) {
  layout::ConcreteLayout layout;
  layout.name = "G";
  layout.shape = {rows, cols};
  layout.strides = {cols, 1};
  layout.element_size = 8;
  return layout;
}

std::size_t count_rects(const std::string& svg) {
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    pos += 5;
  }
  return rects;
}

TEST(AggregatedTiles, SmallContainerStaysOneToOne) {
  layout::ConcreteLayout layout = grid(4, 6);
  std::vector<double> values(24, 1.0);
  AggregatedTileOptions options;
  options.max_tiles_per_axis = 32;
  std::string svg = render_aggregated_tiles_svg(layout, values, options);
  EXPECT_EQ(count_rects(svg), 24u);
  EXPECT_NE(svg.find("1x1 elements/tile"), std::string::npos);
}

TEST(AggregatedTiles, LargeContainerAggregates) {
  // 256x256 capped to 32 tiles/axis: 8x8 elements per tile, 1024 rects.
  layout::ConcreteLayout layout = grid(256, 256);
  std::vector<double> values(256 * 256, 2.0);
  AggregatedTileOptions options;
  options.max_tiles_per_axis = 32;
  std::string svg = render_aggregated_tiles_svg(layout, values, options);
  EXPECT_EQ(count_rects(svg), 1024u);
  EXPECT_NE(svg.find("8x8 elements/tile"), std::string::npos);
}

TEST(AggregatedTiles, AggregationOperators) {
  layout::ConcreteLayout layout = grid(2, 2);
  std::vector<double> values{1, 2, 3, 4};
  AggregatedTileOptions options;
  options.max_tiles_per_axis = 1;  // Everything in one tile.
  options.aggregation = TileAggregation::Sum;
  EXPECT_NE(render_aggregated_tiles_svg(layout, values, options)
                .find(": 10<"),
            std::string::npos);
  options.aggregation = TileAggregation::Max;
  EXPECT_NE(render_aggregated_tiles_svg(layout, values, options)
                .find(": 4<"),
            std::string::npos);
  options.aggregation = TileAggregation::Mean;
  EXPECT_NE(render_aggregated_tiles_svg(layout, values, options)
                .find(": 2.5<"),
            std::string::npos);
}

TEST(AggregatedTiles, FullSizeHdiffView) {
  // The §VIII-c use case: the FULL-size hdiff parameters rendered as an
  // aggregated heatmap (I=J=256 would be 65k tiles unaggregated).
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  // Simulate a modest slice but render against the full logical shape.
  symbolic::SymbolMap params{{"I", 32}, {"J", 32}, {"K", 2}};
  sim::AccessTrace trace = sim::simulate(sdfg, params);
  sim::AccessCounts counts = sim::count_accesses(trace);
  const int in_field = trace.container_id("in_field");
  std::vector<std::int64_t> totals = counts.total(in_field);
  std::vector<double> values(totals.begin(), totals.end());
  AggregatedTileOptions options;
  options.max_tiles_per_axis = 12;
  options.prefix = {0};
  std::string svg = render_aggregated_tiles_svg(trace.layouts[in_field],
                                                values, options);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_LE(count_rects(svg), 12u * 12u);
}

TEST(AggregatedTiles, ArgumentChecks) {
  layout::ConcreteLayout layout = grid(4, 4);
  std::vector<double> wrong_size(3, 0.0);
  EXPECT_THROW(render_aggregated_tiles_svg(layout, wrong_size),
               std::invalid_argument);
  std::vector<double> values(16, 0.0);
  AggregatedTileOptions options;
  options.max_tiles_per_axis = 0;
  EXPECT_THROW(render_aggregated_tiles_svg(layout, values, options),
               std::invalid_argument);
  AggregatedTileOptions bad_prefix;
  bad_prefix.prefix = {0};
  EXPECT_THROW(render_aggregated_tiles_svg(layout, values, bad_prefix),
               std::invalid_argument);
}

}  // namespace
}  // namespace dmv::viz
