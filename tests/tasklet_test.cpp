#include "dmv/ir/tasklet_ast.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dmv::ir {
namespace {

TEST(TaskletParse, SimpleAssignment) {
  TaskletAst ast = parse_tasklet("c = a * b");
  ASSERT_EQ(ast.statements.size(), 1u);
  EXPECT_EQ(ast.statements[0].target, "c");
  EXPECT_EQ(ast.read_connectors(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(ast.written_connectors(), std::vector<std::string>{"c"});
}

TEST(TaskletParse, MultipleStatements) {
  TaskletAst ast = parse_tasklet("t = a + b; o = t * t");
  ASSERT_EQ(ast.statements.size(), 2u);
  // t is a local: assigned before read, so not an input.
  EXPECT_EQ(ast.read_connectors(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(ast.written_connectors(),
            (std::vector<std::string>{"t", "o"}));
}

TEST(TaskletParse, NewlineSeparated) {
  TaskletAst ast = parse_tasklet("x = a\ny = x + 1\n");
  EXPECT_EQ(ast.statements.size(), 2u);
}

TEST(TaskletParse, Numbers) {
  TaskletAst ast = parse_tasklet("o = 0.5 * v + 1e-3 - 2.5e2");
  std::map<std::string, double> values{{"v", 2.0}};
  ast.execute(values);
  EXPECT_DOUBLE_EQ(values["o"], 0.5 * 2.0 + 1e-3 - 2.5e2);
}

TEST(TaskletParse, Errors) {
  EXPECT_THROW(parse_tasklet(""), TaskletParseError);
  EXPECT_THROW(parse_tasklet("a +"), TaskletParseError);
  EXPECT_THROW(parse_tasklet("= 3"), TaskletParseError);
  EXPECT_THROW(parse_tasklet("o = foo(1)"), TaskletParseError);
  EXPECT_THROW(parse_tasklet("o = exp(1, 2)"), TaskletParseError);
  EXPECT_THROW(parse_tasklet("o = (1"), TaskletParseError);
}

TEST(TaskletExecute, Arithmetic) {
  std::map<std::string, double> values{{"a", 6.0}, {"b", 4.0}};
  parse_tasklet("o = a / b - a * b + (a - b)").execute(values);
  EXPECT_DOUBLE_EQ(values["o"], 6.0 / 4.0 - 24.0 + 2.0);
}

TEST(TaskletExecute, UnaryMinus) {
  std::map<std::string, double> values{{"a", 3.0}};
  parse_tasklet("o = -a * -2").execute(values);
  EXPECT_DOUBLE_EQ(values["o"], 6.0);
}

TEST(TaskletExecute, Intrinsics) {
  std::map<std::string, double> values{{"x", 0.7}};
  parse_tasklet(
      "a = exp(x); b = log(a); c = sqrt(x); d = tanh(x); e = erf(x); "
      "f = abs(-x); g = min(x, 0.5); h = max(x, 0.5)")
      .execute(values);
  EXPECT_DOUBLE_EQ(values["a"], std::exp(0.7));
  EXPECT_NEAR(values["b"], 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(values["c"], std::sqrt(0.7));
  EXPECT_DOUBLE_EQ(values["d"], std::tanh(0.7));
  EXPECT_DOUBLE_EQ(values["e"], std::erf(0.7));
  EXPECT_DOUBLE_EQ(values["f"], 0.7);
  EXPECT_DOUBLE_EQ(values["g"], 0.5);
  EXPECT_DOUBLE_EQ(values["h"], 0.7);
}

TEST(TaskletExecute, ComparisonAndSelect) {
  std::map<std::string, double> values{{"a", 2.0}, {"b", 5.0}};
  parse_tasklet("c = a < b; d = a > b; o = select(c, a, b)")
      .execute(values);
  EXPECT_DOUBLE_EQ(values["c"], 1.0);
  EXPECT_DOUBLE_EQ(values["d"], 0.0);
  EXPECT_DOUBLE_EQ(values["o"], 2.0);
}

TEST(TaskletExecute, SelectFalseBranch) {
  std::map<std::string, double> values{{"a", 9.0}, {"b", 5.0}};
  parse_tasklet("o = select(a < b, a, b)").execute(values);
  EXPECT_DOUBLE_EQ(values["o"], 5.0);
}

TEST(TaskletExecute, UndefinedConnectorThrows) {
  std::map<std::string, double> values;
  EXPECT_THROW(parse_tasklet("o = ghost + 1").execute(values),
               TaskletParseError);
}

TEST(TaskletOpCount, CountsByCategory) {
  OpCount count =
      parse_tasklet("o = a * b + c / d - exp(e)").count_operations();
  EXPECT_EQ(count.adds, 2);  // + and -
  EXPECT_EQ(count.muls, 1);
  EXPECT_EQ(count.divs, 1);
  EXPECT_EQ(count.special, 1);
  EXPECT_EQ(count.total(), 5);
}

TEST(TaskletOpCount, NegAndComparisons) {
  OpCount count = parse_tasklet("o = -a; p = a < b").count_operations();
  EXPECT_EQ(count.adds, 1);
  EXPECT_EQ(count.comparisons, 1);
}

TEST(TaskletOpCount, Accumulates) {
  OpCount a = parse_tasklet("o = a + b").count_operations();
  OpCount b = parse_tasklet("o = a * b").count_operations();
  a += b;
  EXPECT_EQ(a.adds, 1);
  EXPECT_EQ(a.muls, 1);
  EXPECT_EQ(a.total(), 2);
}

TEST(TaskletOpCount, HdiffStencilShape) {
  // The fused hdiff tasklet: 5 Laplacians (4 adds + 1 mul each), flux
  // limiting, and the final combination.
  const char* code =
      "lap_c = 4.0*i2j2 - (i3j2 + i1j2 + i2j3 + i2j1)\n"
      "flx1 = lap_c - i2j2\n"
      "flx1 = select(flx1 * (i3j2 - i2j2) > 0, 0, flx1)\n"
      "o = i2j2 - c * flx1";
  OpCount count = parse_tasklet(code).count_operations();
  EXPECT_GT(count.adds, 0);
  EXPECT_GT(count.muls, 0);
  EXPECT_EQ(count.comparisons, 1);
  EXPECT_EQ(count.special, 1);
}

TEST(TaskletAst, SourcePreserved) {
  TaskletAst ast = parse_tasklet("o = a + 1");
  EXPECT_EQ(ast.source, "o = a + 1");
}

TEST(TaskletAst, ConnectorReadOnceListedOnce) {
  TaskletAst ast = parse_tasklet("o = a + a * a");
  EXPECT_EQ(ast.read_connectors(), std::vector<std::string>{"a"});
}

}  // namespace
}  // namespace dmv::ir
