#include <gtest/gtest.h>

#include <random>

#include "dmv/analysis/analysis.hpp"
#include "dmv/exec/interpreter.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/transforms/transforms.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::transforms {
namespace {

ir::NodeId find_map(const ir::State& state) {
  for (const ir::Node& node : state.nodes()) {
    if (node.kind == ir::NodeKind::MapEntry) return node.id;
  }
  return ir::kNoNode;
}

TEST(Tiling, SplitsTheParameter) {
  ir::Sdfg sdfg = workloads::matmul();
  ir::State& state = sdfg.states()[0];
  const ir::NodeId entry = find_map(state);
  tile_map(state, entry, "k", 5);
  const ir::MapInfo& map = state.node(entry).map;
  ASSERT_EQ(map.params.size(), 4u);
  EXPECT_EQ(map.params[0], "k_tile");
  EXPECT_EQ(map.params[3], "k");
  // Tile counter range: [0, K/5 - 1].
  EXPECT_EQ(map.ranges[0].end.evaluate({{"K", 10}}), 1);
  // Inner window size stays the tile size, independent of k_tile.
  symbolic::Expr size = map.ranges[3].end - map.ranges[3].begin + 1;
  EXPECT_TRUE(size.is_constant(5)) << size.to_string();
}

TEST(Tiling, IterationSpaceCoversExactlyTheOriginal) {
  ir::Sdfg sdfg = workloads::matmul();
  ir::State& state = sdfg.states()[0];
  tile_map(state, find_map(state), "j", 3);
  symbolic::SymbolMap env{{"M", 4}, {"K", 2}, {"N", 9}};
  sim::IterationSpace space =
      sim::IterationSpace::from(state.node(find_map(state)).map, env);
  EXPECT_EQ(space.size(), 4 * 2 * 9);
}

TEST(Tiling, PreservesSemantics) {
  symbolic::SymbolMap env{{"M", 6}, {"K", 8}, {"N", 4}};
  auto run_matmul = [&](bool tiled) {
    ir::Sdfg sdfg = workloads::matmul();
    if (tiled) {
      ir::State& state = sdfg.states()[0];
      tile_map(state, find_map(state), "i", 3);
      tile_map(state, find_map(state), "k", 4);
    }
    exec::Buffers buffers(sdfg, env);
    std::vector<double> a(6 * 8), b(8 * 4);
    std::mt19937 rng(5);
    std::uniform_real_distribution<double> value(-1, 1);
    for (auto& x : a) x = value(rng);
    for (auto& x : b) x = value(rng);
    buffers.set_logical("A", a);
    buffers.set_logical("B", b);
    exec::run(sdfg, env, buffers);
    return buffers.logical("C");
  };
  EXPECT_EQ(run_matmul(false), run_matmul(true));
}

TEST(Tiling, SimulationAccessCountsUnchanged) {
  // Tiling permutes the iteration ORDER; the multiset of accesses stays
  // identical, so flattened counts match element-wise.
  symbolic::SymbolMap env{{"M", 8}, {"K", 8}, {"N", 8}};
  ir::Sdfg plain = workloads::matmul();
  ir::Sdfg tiled = workloads::matmul();
  tile_map(tiled.states()[0], find_map(tiled.states()[0]), "j", 4);
  sim::AccessTrace plain_trace = sim::simulate(plain, env);
  sim::AccessTrace tiled_trace = sim::simulate(tiled, env);
  sim::AccessCounts plain_counts = sim::count_accesses(plain_trace);
  sim::AccessCounts tiled_counts = sim::count_accesses(tiled_trace);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(plain_counts.reads[c], tiled_counts.reads[c]);
    EXPECT_EQ(plain_counts.writes[c], tiled_counts.writes[c]);
  }
}

TEST(Tiling, ImprovesReuseOnMatmul) {
  // The optimization the paper's related-access view motivates (§V-C):
  // tiling j and k shortens B's reuse distances, cutting misses.
  symbolic::SymbolMap env{{"M", 24}, {"K", 24}, {"N", 24}};
  auto misses = [&](bool tiled) {
    ir::Sdfg sdfg = workloads::matmul(/*b_column_major=*/false);
    if (tiled) {
      ir::State& state = sdfg.states()[0];
      tile_map(state, find_map(state), "i", 6);
      tile_map(state, find_map(state), "j", 6);
      tile_map(state, find_map(state), "k", 6);
    }
    sim::AccessTrace trace = sim::simulate(sdfg, env);
    sim::StackDistanceResult distances = sim::stack_distances(trace, 64);
    return sim::classify_misses(trace, distances, 16).total.misses();
  };
  EXPECT_LT(misses(true), misses(false));
}

TEST(Tiling, VolumeAnalysisStillEvaluates) {
  // scope_iterations over a tiled map: the window size is constant, so
  // the symbolic product still evaluates (extent = tiles x tile size).
  ir::Sdfg sdfg = workloads::matmul();
  ir::State& state = sdfg.states()[0];
  tile_map(state, find_map(state), "i", 4);
  symbolic::SymbolMap env{{"M", 8}, {"K", 3}, {"N", 5}};
  for (const ir::Edge& edge : state.edges()) {
    if (edge.memlet.is_empty()) continue;
    EXPECT_NO_THROW(
        (void)analysis::total_edge_elements(state, edge).evaluate(env));
  }
}

TEST(Tiling, ArgumentChecks) {
  ir::Sdfg sdfg = workloads::matmul();
  ir::State& state = sdfg.states()[0];
  const ir::NodeId entry = find_map(state);
  EXPECT_THROW(tile_map(state, entry, "i", 0), std::invalid_argument);
  EXPECT_THROW(tile_map(state, entry, "ghost", 4), std::invalid_argument);
  // Non-map node.
  ir::NodeId access = ir::kNoNode;
  for (const ir::Node& node : state.nodes()) {
    if (node.kind == ir::NodeKind::Access) access = node.id;
  }
  EXPECT_THROW(tile_map(state, access, "i", 4), std::invalid_argument);
  // Constant extent not divisible.
  ir::Sdfg fixed = workloads::outer_product();
  ir::State& fixed_state = fixed.states()[0];
  ir::Node& map_node = fixed_state.node(find_map(fixed_state));
  map_node.map.ranges[0] = ir::Range{0, 9, 1};  // Extent 10.
  EXPECT_THROW(tile_map(fixed_state, map_node.id, "i", 3),
               std::invalid_argument);
  // Double tiling the same parameter name collides.
  tile_map(state, entry, "i", 4);
  EXPECT_THROW(tile_map(state, entry, "i", 2), std::invalid_argument);
}

}  // namespace
}  // namespace dmv::transforms
