#include "dmv/builder/program_builder.hpp"

#include <gtest/gtest.h>

#include "dmv/ir/validate.hpp"
#include "dmv/symbolic/parser.hpp"

namespace dmv::builder {
namespace {

using ir::NodeKind;

TEST(PropagateSubset, WidensOverParams) {
  Subset per_iteration = Subset::parse("i, j + 1, 0:K-1");
  std::vector<std::string> params{"i", "j"};
  std::vector<Range> ranges{
      Range{symbolic::parse("0"), symbolic::parse("N-1"), 1},
      Range{symbolic::parse("2"), symbolic::parse("M-1"), 1}};
  Subset widened = propagate_subset(per_iteration, params, ranges);
  EXPECT_EQ(widened.to_string(), "0:N - 1, 3:M, 0:K - 1");
}

TEST(PropagateSubset, ConstantsUntouched) {
  Subset s = propagate_subset(Subset::parse("5, i"), {"i"},
                              {Range{0, 9, 1}});
  EXPECT_EQ(s.to_string(), "5, 0:9");
}

TEST(ProgramBuilder, MappedTaskletStructure) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.array("B", {"N"});
  p.state("s");
  p.mapped_tasklet("double", {{"i", "0:N-1"}}, {{"v", "A", "i"}},
                   "o = v * 2", {{"o", "B", "i"}});
  ir::Sdfg sdfg = p.take();

  const ir::State& state = sdfg.states()[0];
  int accesses = 0, tasklets = 0, entries = 0, exits = 0;
  for (const ir::Node& node : state.nodes()) {
    switch (node.kind) {
      case NodeKind::Access:
        ++accesses;
        break;
      case NodeKind::Tasklet:
        ++tasklets;
        break;
      case NodeKind::MapEntry:
        ++entries;
        break;
      case NodeKind::MapExit:
        ++exits;
        break;
    }
  }
  EXPECT_EQ(accesses, 2);
  EXPECT_EQ(tasklets, 1);
  EXPECT_EQ(entries, 1);
  EXPECT_EQ(exits, 1);
  EXPECT_EQ(state.edges().size(), 4u);
}

TEST(ProgramBuilder, OuterMemletsArePropagated) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N + 2"});
  p.array("B", {"N"});
  p.state("s");
  p.mapped_tasklet("shift", {{"i", "0:N-1"}}, {{"v", "A", "i + 2"}},
                   "o = v", {{"o", "B", "i"}});
  ir::Sdfg sdfg = p.take();
  const ir::State& state = sdfg.states()[0];

  // The access -> entry edge covers [2, N+1] with volume N.
  bool found = false;
  for (const ir::Edge& edge : state.edges()) {
    if (state.node(edge.src).kind == NodeKind::Access) {
      found = true;
      EXPECT_EQ(edge.memlet.subset.to_string(), "2:1 + N");
      EXPECT_EQ(edge.memlet.effective_volume().evaluate({{"N", 6}}), 6);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ProgramBuilder, WcrOnOutput) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N", "N"});
  p.array("s", {"1"});
  p.state("s");
  p.mapped_tasklet("reduce", {{"i", "0:N-1"}, {"j", "0:N-1"}},
                   {{"v", "A", "i, j"}}, "o = v",
                   {{"o", "s", "0", ir::Wcr::Sum}});
  ir::Sdfg sdfg = p.take();
  int wcr_edges = 0;
  for (const ir::Edge& edge : sdfg.states()[0].edges()) {
    if (edge.memlet.wcr == ir::Wcr::Sum) ++wcr_edges;
  }
  EXPECT_EQ(wcr_edges, 2);  // Inner and propagated outer edge.
}

TEST(ProgramBuilder, ChainSharesOneMap) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.array("B", {"N"});
  p.state("s");
  ChainStage stage1;
  stage1.label = "square";
  stage1.array_inputs = {{"v", "A", "i"}};
  stage1.code = "t = v * v";
  stage1.chain_outputs = {"t"};
  ChainStage stage2;
  stage2.label = "offset";
  stage2.chain_inputs = {"t"};
  stage2.code = "o = t + 1";
  stage2.array_outputs = {{"o", "B", "i"}};
  p.mapped_chain("fused", {{"i", "0:N-1"}}, {stage1, stage2});
  ir::Sdfg sdfg = p.take();
  const ir::State& state = sdfg.states()[0];

  int entries = 0, tasklets = 0, empty_edges = 0;
  for (const ir::Node& node : state.nodes()) {
    if (node.kind == NodeKind::MapEntry) ++entries;
    if (node.kind == NodeKind::Tasklet) ++tasklets;
  }
  for (const ir::Edge& edge : state.edges()) {
    if (edge.memlet.is_empty()) ++empty_edges;
  }
  EXPECT_EQ(entries, 1);
  EXPECT_EQ(tasklets, 2);
  // The register handoff between the two fused stages.
  EXPECT_EQ(empty_edges, 1);
}

TEST(ProgramBuilder, ChainRejectsUnknownValue) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.state("s");
  ChainStage stage;
  stage.label = "bad";
  stage.chain_inputs = {"ghost"};
  stage.code = "o = ghost";
  stage.array_outputs = {{"o", "A", "i"}};
  EXPECT_THROW(p.mapped_chain("m", {{"i", "0:N-1"}}, {stage}),
               std::invalid_argument);
}

TEST(ProgramBuilder, RejectsMultiDimMapRange) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.state("s");
  EXPECT_THROW(p.mapped_tasklet("m", {{"i", "0:N-1, 0:N-1"}},
                                {{"v", "A", "i"}}, "o = v",
                                {{"o", "A", "i"}}),
               std::invalid_argument);
}

TEST(ProgramBuilder, CopyEdge) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.array("B", {"N"});
  p.state("s");
  p.copy("A", "0:N-1", "B", "0:N-1");
  ir::Sdfg sdfg = p.take();
  const ir::State& state = sdfg.states()[0];
  ASSERT_EQ(state.edges().size(), 1u);
  EXPECT_EQ(state.edges()[0].memlet.data, "A");
  EXPECT_FALSE(state.edges()[0].memlet.other_subset.ranges.empty());
}

TEST(ProgramBuilder, CopyRejectsVolumeMismatch) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.array("B", {"N"});
  p.state("s");
  EXPECT_THROW(p.copy("A", "0:N-1", "B", "0:N-2"), std::invalid_argument);
}

TEST(ProgramBuilder, ReusesAccessNodesForChains) {
  // Producer writes T, consumer reads T: one shared access node, giving
  // the exit -> access -> entry chain the fusion matcher needs.
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.transient("T", {"N"});
  p.array("B", {"N"});
  p.state("s");
  p.mapped_tasklet("first", {{"i", "0:N-1"}}, {{"v", "A", "i"}},
                   "o = v + 1", {{"o", "T", "i"}});
  p.mapped_tasklet("second", {{"i", "0:N-1"}}, {{"v", "T", "i"}},
                   "o = v * 2", {{"o", "B", "i"}});
  ir::Sdfg sdfg = p.take();
  int t_nodes = 0;
  for (const ir::Node& node : sdfg.states()[0].nodes()) {
    if (node.kind == NodeKind::Access && node.data == "T") ++t_nodes;
  }
  EXPECT_EQ(t_nodes, 1);
}

TEST(ProgramBuilder, TakeValidates) {
  ProgramBuilder p("prog");
  p.state("s");
  // Access to an undeclared array fails validation at take().
  p.sdfg().states()[0].add_access("ghost");
  EXPECT_THROW(p.take(), std::runtime_error);
}

TEST(ProgramBuilder, DefaultStateCreatedOnDemand) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.mapped_tasklet("m", {{"i", "0:N-1"}}, {{"v", "A", "i"}}, "o = v",
                   {{"o", "A", "i"}});
  EXPECT_EQ(p.sdfg().states().size(), 1u);
  EXPECT_EQ(p.sdfg().states()[0].name(), "main");
}

}  // namespace
}  // namespace dmv::builder
