#include "dmv/sim/trace_plan.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dmv/builder/program_builder.hpp"
#include "dmv/par/par.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/workloads/workloads.hpp"

// The chunk planner's contract: plan_trace() predicts the serial event
// stream EXACTLY — total counts, per-chunk counts, and offsets — for
// every workload and binding, before a single event is generated. These
// tests cross-check plans against serial emission and regenerate each
// chunk in isolation to verify it reproduces its slice of the serial
// trace bit-for-bit.

namespace dmv::sim {
namespace {

using builder::ProgramBuilder;

// Serial ground truth: the parallel path must never be what we compare
// against here.
AccessTrace serial_trace(const ir::Sdfg& sdfg, const symbolic::SymbolMap& b,
                         SimulationOptions options = {}) {
  options.parallel_trace = false;
  return simulate(sdfg, b, options);
}

// Validates the structural invariants of a plan and its agreement with
// the serial trace, then regenerates every chunk through simulate_chunk
// and compares each against the corresponding slice of the serial
// stream.
void expect_plan_matches_serial(const ir::Sdfg& sdfg,
                                const symbolic::SymbolMap& binding,
                                const SimulationOptions& options = {},
                                int max_chunks_per_map = 4) {
  const AccessTrace reference = serial_trace(sdfg, binding, options);
  const TracePlan plan = plan_trace(sdfg, binding, options,
                                    max_chunks_per_map);
  ASSERT_TRUE(plan.parallelizable);
  EXPECT_EQ(plan.total_events,
            static_cast<std::int64_t>(reference.events.size()));
  EXPECT_EQ(plan.total_executions, reference.executions);

  // Chunks tile the stream: contiguous event and execution offsets.
  std::int64_t event_cursor = 0;
  std::int64_t execution_cursor = 0;
  for (const TraceChunk& chunk : plan.chunks) {
    EXPECT_EQ(chunk.event_offset, event_cursor);
    EXPECT_EQ(chunk.execution_offset, execution_cursor);
    EXPECT_GT(chunk.event_count + chunk.execution_count, 0)
        << "planner emitted an empty chunk";
    event_cursor += chunk.event_count;
    execution_cursor += chunk.execution_count;
  }
  EXPECT_EQ(event_cursor, plan.total_events);
  EXPECT_EQ(execution_cursor, plan.total_executions);

  // Each chunk regenerated in isolation reproduces its serial slice.
  for (const TraceChunk& chunk : plan.chunks) {
    EventList events;
    simulate_chunk(sdfg, binding, options, reference, chunk, events);
    ASSERT_EQ(static_cast<std::int64_t>(events.size()), chunk.event_count);
    for (std::int64_t i = 0; i < chunk.event_count; ++i) {
      const AccessEvent got = events[static_cast<std::size_t>(i)];
      const AccessEvent want =
          reference.events[static_cast<std::size_t>(chunk.event_offset + i)];
      ASSERT_EQ(got.container, want.container) << "chunk event " << i;
      ASSERT_EQ(got.flat, want.flat) << "chunk event " << i;
      ASSERT_EQ(got.is_write, want.is_write) << "chunk event " << i;
      ASSERT_EQ(got.timestep, want.timestep) << "chunk event " << i;
      ASSERT_EQ(got.execution, want.execution) << "chunk event " << i;
      ASSERT_EQ(got.tasklet, want.tasklet) << "chunk event " << i;
    }
  }
}

TEST(TracePlan, HdiffAcrossBindings) {
  const ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  expect_plan_matches_serial(sdfg, workloads::hdiff_local());
  expect_plan_matches_serial(sdfg, {{"I", 5}, {"J", 7}, {"K", 3}});
  expect_plan_matches_serial(sdfg, {{"I", 16}, {"J", 4}, {"K", 1}});
}

TEST(TracePlan, BertAcrossBindings) {
  const ir::Sdfg sdfg = workloads::bert_encoder(workloads::BertStage::Fused1);
  expect_plan_matches_serial(sdfg, workloads::bert_small());
  expect_plan_matches_serial(
      sdfg,
      {{"B", 1}, {"H", 1}, {"SM", 4}, {"I", 8}, {"emb", 16}, {"P", 4}});
  expect_plan_matches_serial(
      sdfg,
      {{"B", 2}, {"H", 2}, {"SM", 4}, {"I", 8}, {"emb", 8}, {"P", 2}});
}

TEST(TracePlan, MatmulAcrossBindings) {
  const ir::Sdfg sdfg = workloads::matmul();
  expect_plan_matches_serial(sdfg, workloads::matmul_fig5());
  expect_plan_matches_serial(sdfg, {{"M", 3}, {"N", 5}, {"K", 7}});
  expect_plan_matches_serial(sdfg, {{"M", 1}, {"N", 1}, {"K", 9}});
}

TEST(TracePlan, ConvAcrossBindings) {
  const ir::Sdfg sdfg = workloads::conv2d();
  expect_plan_matches_serial(sdfg, workloads::conv2d_fig4());
  symbolic::SymbolMap binding = workloads::conv2d_fig4();
  binding["Cout"] = 1;
  expect_plan_matches_serial(sdfg, binding);
  binding["Hh"] = 6;
  binding["W"] = 6;
  expect_plan_matches_serial(sdfg, binding);
}

TEST(TracePlan, OuterProductAcrossBindings) {
  const ir::Sdfg sdfg = workloads::outer_product();
  expect_plan_matches_serial(sdfg, workloads::outer_product_fig3());
  expect_plan_matches_serial(sdfg, {{"M", 1}, {"N", 17}});
  expect_plan_matches_serial(sdfg, {{"M", 64}, {"N", 2}});
}

TEST(TracePlan, WcrReadsDoubleTheOutEdgeEvents) {
  // The planner must model the wcr_reads option: each Sum-accumulating
  // out-edge element becomes a read+write pair.
  const ir::Sdfg sdfg = workloads::matmul();
  SimulationOptions options;
  options.wcr_reads = true;
  expect_plan_matches_serial(sdfg, {{"M", 4}, {"N", 4}, {"K", 4}}, options);
}

TEST(TracePlan, InterpretedEngineChunks) {
  // simulate_chunk honors options.compiled = false; offsets don't change.
  const ir::Sdfg sdfg = workloads::outer_product();
  SimulationOptions options;
  options.compiled = false;
  expect_plan_matches_serial(sdfg, workloads::outer_product_fig3(), options);
}

TEST(TracePlan, ManyChunksPerMap) {
  // Oversplitting (more chunks than outer iterations available) must
  // still tile the stream exactly.
  const ir::Sdfg sdfg = workloads::outer_product();
  expect_plan_matches_serial(sdfg, {{"M", 6}, {"N", 3}}, {},
                             /*max_chunks_per_map=*/64);
}

TEST(TracePlan, DegenerateExtentZeroMap) {
  // A map whose outer extent is 0 at this binding contributes nothing.
  ProgramBuilder p("empty_map");
  p.symbols({"N"});
  p.array("A", {"8"});
  p.array("B", {"8"});
  p.state("s");
  p.mapped_tasklet("t", {{"i", "0:N-1"}}, {{"a", "A", "i"}}, "o = a",
                   {{"o", "B", "i"}});
  const ir::Sdfg sdfg = p.take();
  const symbolic::SymbolMap binding{{"N", 0}};

  const TracePlan plan = plan_trace(sdfg, binding, {});
  ASSERT_TRUE(plan.parallelizable);
  EXPECT_EQ(plan.total_events, 0);
  EXPECT_EQ(plan.total_executions, 0);
  EXPECT_TRUE(plan.chunks.empty());
  expect_plan_matches_serial(sdfg, binding);
  // The parallel entry points handle the empty plan too.
  EXPECT_EQ(simulate(sdfg, binding).events.size(), 0u);
}

TEST(TracePlan, DegenerateExtentOneMap) {
  // A single outer iteration cannot be split further than one chunk.
  ProgramBuilder p("one_iter");
  p.symbols({"N"});
  p.array("A", {"4", "N"});
  p.array("B", {"4", "N"});
  p.state("s");
  p.mapped_tasklet("t", {{"i", "0:0"}, {"j", "0:N-1"}}, {{"a", "A", "i, j"}},
                   "o = a", {{"o", "B", "i, j"}});
  const ir::Sdfg sdfg = p.take();
  const symbolic::SymbolMap binding{{"N", 5}};

  const TracePlan plan = plan_trace(sdfg, binding, {}, 8);
  ASSERT_TRUE(plan.parallelizable);
  ASSERT_EQ(plan.chunks.size(), 1u);
  EXPECT_EQ(plan.chunks[0].outer_begin, 0);
  EXPECT_EQ(plan.chunks[0].outer_count, 1);
  expect_plan_matches_serial(sdfg, binding, {}, 8);
}

TEST(TracePlan, ZeroTripNestedMap) {
  // The outer map runs but the nested tasklet map is empty at this
  // binding: executions exist in neither engine, and the planner agrees.
  ProgramBuilder p("zero_inner");
  p.symbols({"N", "K"});
  p.array("A", {"N", "8"});
  p.array("B", {"N", "8"});
  p.state("s");
  p.begin_map("outer", {{"i", "0:N-1"}});
  p.mapped_tasklet("t", {{"k", "0:K-1"}}, {{"a", "A", "i, k"}}, "o = a",
                   {{"o", "B", "i, k"}});
  p.end_map();
  const ir::Sdfg sdfg = p.take();
  const symbolic::SymbolMap binding{{"N", 6}, {"K", 0}};

  const TracePlan plan = plan_trace(sdfg, binding, {});
  ASSERT_TRUE(plan.parallelizable);
  EXPECT_EQ(plan.total_events, 0);
  EXPECT_EQ(plan.total_executions, 0);
  expect_plan_matches_serial(sdfg, binding);
}

TEST(TracePlan, TriangularInnerRangeFallsBackToEnumeration) {
  // j's extent depends on the OUTER map parameter — the analytic product
  // fails and the planner enumerates outer ordinals, staying exact.
  ProgramBuilder p("triangle");
  p.symbols({"N"});
  p.array("A", {"N", "N"});
  p.array("B", {"N", "N"});
  p.state("s");
  p.mapped_tasklet("t", {{"i", "0:N-1"}, {"j", "0:i"}}, {{"a", "A", "i, j"}},
                   "o = a", {{"o", "B", "i, j"}});
  const ir::Sdfg sdfg = p.take();
  const symbolic::SymbolMap binding{{"N", 9}};
  expect_plan_matches_serial(sdfg, binding, {}, 4);
}

TEST(TracePlan, CopyNodesPlanAsSerialChunks) {
  ProgramBuilder p("copy_chunks");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.array("B", {"N"});
  p.array("C", {"N"});
  p.state("s");
  p.copy("A", "0:N-1", "B", "0:N-1");
  p.copy("B", "0:N-1", "C", "0:N-1");
  const ir::Sdfg sdfg = p.take();
  expect_plan_matches_serial(sdfg, {{"N", 12}});
}

TEST(TracePlan, ChunkCountTracksThreadKnob) {
  // max_chunks_per_map = 0 derives the split from the thread knob; more
  // threads must never change the PLANNED TOTALS, only the partition.
  const ir::Sdfg sdfg = workloads::matmul();
  const symbolic::SymbolMap binding = workloads::matmul_fig5();
  TracePlan narrow;
  TracePlan wide;
  {
    par::ThreadScope scope(2);
    narrow = plan_trace(sdfg, binding, {});
  }
  {
    par::ThreadScope scope(8);
    wide = plan_trace(sdfg, binding, {});
  }
  ASSERT_TRUE(narrow.parallelizable);
  ASSERT_TRUE(wide.parallelizable);
  EXPECT_EQ(narrow.total_events, wide.total_events);
  EXPECT_EQ(narrow.total_executions, wide.total_executions);
  EXPECT_GE(wide.chunks.size(), narrow.chunks.size());
}

TEST(TracePlan, UnboundSymbolYieldsSerialFallback) {
  // plan_trace never throws: an unbound extent marks the plan
  // non-parallelizable and the caller's serial engine surfaces the error.
  const ir::Sdfg sdfg = workloads::matmul();
  const TracePlan plan = plan_trace(sdfg, {{"M", 4}, {"N", 4}}, {});
  EXPECT_FALSE(plan.parallelizable);
  EXPECT_TRUE(plan.chunks.empty());
}

}  // namespace
}  // namespace dmv::sim
