#include "dmv/ir/json_reader.hpp"

#include <gtest/gtest.h>

#include "dmv/analysis/analysis.hpp"
#include "dmv/exec/interpreter.hpp"
#include "dmv/ir/serialize.hpp"
#include "dmv/ir/validate.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::ir {
namespace {

void expect_structurally_equal(const Sdfg& a, const Sdfg& b) {
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.symbols(), b.symbols());
  ASSERT_EQ(a.arrays().size(), b.arrays().size());
  for (const auto& [name, descriptor] : a.arrays()) {
    ASSERT_TRUE(b.has_array(name));
    const DataDescriptor& other = b.array(name);
    ASSERT_EQ(descriptor.rank(), other.rank());
    for (int d = 0; d < descriptor.rank(); ++d) {
      EXPECT_TRUE(descriptor.shape[d].equals(other.shape[d]));
      EXPECT_TRUE(descriptor.strides[d].equals(other.strides[d]));
    }
    EXPECT_EQ(descriptor.element_size, other.element_size);
    EXPECT_EQ(descriptor.transient, other.transient);
  }
  ASSERT_EQ(a.states().size(), b.states().size());
  for (std::size_t s = 0; s < a.states().size(); ++s) {
    const State& sa = a.states()[s];
    const State& sb = b.states()[s];
    ASSERT_EQ(sa.num_nodes(), sb.num_nodes());
    for (std::size_t n = 0; n < sa.num_nodes(); ++n) {
      const Node& na = sa.node(static_cast<NodeId>(n));
      const Node& nb = sb.node(static_cast<NodeId>(n));
      EXPECT_EQ(na.kind, nb.kind);
      EXPECT_EQ(na.label, nb.label);
      EXPECT_EQ(na.data, nb.data);
      EXPECT_EQ(na.paired, nb.paired);
      EXPECT_EQ(na.scope_parent, nb.scope_parent);
      EXPECT_EQ(na.map.params, nb.map.params);
    }
    ASSERT_EQ(sa.edges().size(), sb.edges().size());
    for (std::size_t e = 0; e < sa.edges().size(); ++e) {
      EXPECT_EQ(sa.edges()[e].src, sb.edges()[e].src);
      EXPECT_EQ(sa.edges()[e].dst, sb.edges()[e].dst);
      EXPECT_EQ(sa.edges()[e].memlet.data, sb.edges()[e].memlet.data);
      EXPECT_EQ(sa.edges()[e].memlet.subset.to_string(),
                sb.edges()[e].memlet.subset.to_string());
      EXPECT_EQ(sa.edges()[e].memlet.wcr, sb.edges()[e].memlet.wcr);
    }
  }
}

TEST(JsonRoundTrip, Matmul) {
  Sdfg original = workloads::matmul();
  Sdfg restored = from_json(to_json(original));
  expect_structurally_equal(original, restored);
  EXPECT_NO_THROW(validate_or_throw(restored));
}

TEST(JsonRoundTrip, HdiffAllVariants) {
  for (auto variant :
       {workloads::HdiffVariant::Baseline, workloads::HdiffVariant::Padded}) {
    Sdfg original = workloads::hdiff(variant);
    Sdfg restored = from_json(to_json(original));
    expect_structurally_equal(original, restored);
  }
}

TEST(JsonRoundTrip, BertSurvivesFusionThenSerialization) {
  Sdfg original = workloads::bert_encoder(workloads::BertStage::Fused2);
  Sdfg restored = from_json(to_json(original));
  expect_structurally_equal(original, restored);
  EXPECT_NO_THROW(validate_or_throw(restored));
}

TEST(JsonRoundTrip, AnalysesAgree) {
  Sdfg original = workloads::hdiff(workloads::HdiffVariant::Baseline);
  Sdfg restored = from_json(to_json(original));
  const symbolic::SymbolMap params = workloads::hdiff_local();
  EXPECT_EQ(analysis::total_movement_bytes(original).evaluate(params),
            analysis::total_movement_bytes(restored).evaluate(params));
  EXPECT_EQ(analysis::total_operations(original).evaluate(params),
            analysis::total_operations(restored).evaluate(params));
  // Simulation on the restored graph produces the identical trace.
  sim::AccessTrace a = sim::simulate(original, params);
  sim::AccessTrace b = sim::simulate(restored, params);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].flat, b.events[i].flat);
    EXPECT_EQ(a.events[i].container, b.events[i].container);
  }
}

TEST(JsonRoundTrip, InterpreterAgrees) {
  Sdfg original = workloads::outer_product();
  Sdfg restored = from_json(to_json(original));
  const symbolic::SymbolMap params = workloads::outer_product_fig3();
  exec::Buffers buffers_a(original, params);
  exec::Buffers buffers_b(restored, params);
  buffers_a.set_logical("A", {1, 2, 3});
  buffers_a.set_logical("B", {4, 5, 6, 7});
  buffers_b.set_logical("A", {1, 2, 3});
  buffers_b.set_logical("B", {4, 5, 6, 7});
  exec::run(original, params, buffers_a);
  exec::run(restored, params, buffers_b);
  EXPECT_EQ(buffers_a.logical("C"), buffers_b.logical("C"));
}

TEST(JsonReader, RejectsMalformedJson) {
  EXPECT_THROW(from_json(""), JsonError);
  EXPECT_THROW(from_json("{"), JsonError);
  EXPECT_THROW(from_json("{\"name\": }"), JsonError);
  EXPECT_THROW(from_json("[1, 2"), JsonError);
  EXPECT_THROW(from_json("{\"name\": \"x\"} trailing"), JsonError);
  EXPECT_THROW(from_json("{\"name\": \"unterminated}"), JsonError);
}

TEST(JsonReader, RejectsWrongSchema) {
  EXPECT_THROW(from_json("{\"title\": \"no name\"}"), JsonError);
  EXPECT_THROW(from_json("{\"name\": \"p\", \"symbols\": 3}"), JsonError);
  EXPECT_THROW(
      from_json("{\"name\": \"p\", \"symbols\": [], \"containers\": "
                "[{\"name\": \"A\"}], \"states\": []}"),
      JsonError);
}

TEST(JsonReader, ParsesEscapes) {
  Sdfg sdfg("quote\"backslash\\");
  Sdfg restored = from_json(to_json(sdfg));
  EXPECT_EQ(restored.name(), "quote\"backslash\\");
}

TEST(JsonReader, BadExpressionReportsCleanly) {
  const char* text =
      "{\"name\": \"p\", \"symbols\": [], \"containers\": [{\"name\": "
      "\"A\", \"shape\": [\"$$$\"], \"strides\": [\"1\"], "
      "\"element_size\": 8, \"transient\": false}], \"states\": []}";
  try {
    from_json(text);
    FAIL() << "expected JsonError";
  } catch (const JsonError& error) {
    EXPECT_NE(std::string(error.what()).find("bad expression"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace dmv::ir
