// Randomized whole-stack consistency tests: generate random (but valid)
// elementwise/stencil pipelines, then check system-level invariants that
// must hold for ANY program:
//   * the builder's output validates,
//   * JSON round-trips losslessly (analyses agree),
//   * simulated event counts equal the static per-edge volumes,
//   * map fusion preserves interpreter semantics,
//   * the fully-associative cache prediction matches the exact simulator.

#include <gtest/gtest.h>

#include <random>

#include "dmv/analysis/analysis.hpp"
#include "dmv/builder/program_builder.hpp"
#include "dmv/exec/interpreter.hpp"
#include "dmv/ir/json_reader.hpp"
#include "dmv/ir/serialize.hpp"
#include "dmv/ir/validate.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/transforms/transforms.hpp"

namespace dmv {
namespace {

struct RandomProgram {
  ir::Sdfg sdfg;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
};

// Builds a random pipeline of 2-6 rank-2 elementwise/shifted maps over
// [N, N] containers with a halo, chained through transients.
RandomProgram random_program(int seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> stage_count(2, 6);
  std::uniform_int_distribution<int> op_pick(0, 3);
  std::uniform_int_distribution<int> shift_pick(0, 2);

  builder::ProgramBuilder p("fuzz_" + std::to_string(seed));
  p.symbols({"N"});
  // Halo of 2 so shifted reads stay in bounds.
  p.array("in0", {"N + 2", "N + 2"});
  p.array("in1", {"N + 2", "N + 2"});
  RandomProgram program{ir::Sdfg("placeholder"), {"in0", "in1"}, {}};

  p.state("body");
  std::vector<std::string> live{"in0", "in1"};  // Readable containers.
  std::vector<bool> live_has_halo{true, true};
  const int stages = stage_count(rng);
  for (int s = 0; s < stages; ++s) {
    std::uniform_int_distribution<int> source_pick(
        0, static_cast<int>(live.size()) - 1);
    const int source = source_pick(rng);
    const bool halo = live_has_halo[source];
    const std::string destination =
        s + 1 == stages ? "result" : "t" + std::to_string(s);
    if (s + 1 == stages) {
      p.array(destination, {"N", "N"});
      program.outputs.push_back(destination);
    } else {
      p.transient(destination, {"N", "N"});
    }

    // Subset: identity for halo-free sources, small shift when the
    // source has a halo.
    std::string subset = "i, j";
    if (halo) {
      const int di = shift_pick(rng), dj = shift_pick(rng);
      subset = "i + " + std::to_string(di) + ", j + " + std::to_string(dj);
    }
    const char* codes[] = {"o = v * 2 + 1", "o = v - 3", "o = v * v",
                           "o = 0.5 * v + 0.25"};
    p.mapped_tasklet("stage" + std::to_string(s),
                     {{"i", "0:N-1"}, {"j", "0:N-1"}},
                     {{"v", live[source], subset}}, codes[op_pick(rng)],
                     {{"o", destination, "i, j"}});
    live.push_back(destination);
    live_has_halo.push_back(false);
  }
  program.sdfg = p.take();
  return program;
}

std::vector<double> run_random(ir::Sdfg& sdfg,
                               const RandomProgram& program,
                               const symbolic::SymbolMap& env, int seed) {
  exec::Buffers buffers(sdfg, env);
  std::mt19937 rng(seed * 7 + 1);
  std::uniform_real_distribution<double> value(-2, 2);
  for (const std::string& input : program.inputs) {
    std::vector<double> data(buffers.layout(input).total_elements());
    for (double& x : data) x = value(rng);
    buffers.set_logical(input, data);
  }
  exec::run(sdfg, env, buffers);
  std::vector<double> out;
  for (const std::string& output : program.outputs) {
    std::vector<double> data = buffers.logical(output);
    out.insert(out.end(), data.begin(), data.end());
  }
  return out;
}

class Fuzz : public ::testing::TestWithParam<int> {};

TEST_P(Fuzz, BuilderOutputValidates) {
  RandomProgram program = random_program(GetParam());
  EXPECT_TRUE(ir::validate(program.sdfg).empty());
}

TEST_P(Fuzz, JsonRoundTripAgrees) {
  RandomProgram program = random_program(GetParam());
  ir::Sdfg restored = ir::from_json(ir::to_json(program.sdfg));
  const symbolic::SymbolMap env{{"N", 6}};
  EXPECT_EQ(
      analysis::total_movement_bytes(program.sdfg).evaluate(env),
      analysis::total_movement_bytes(restored).evaluate(env));
  EXPECT_EQ(run_random(program.sdfg, program, env, GetParam()),
            run_random(restored, program, env, GetParam()));
}

TEST_P(Fuzz, SimulationMatchesStaticVolumes) {
  RandomProgram program = random_program(GetParam());
  const symbolic::SymbolMap env{{"N", 5}};
  const ir::State& state = program.sdfg.states()[0];
  std::int64_t static_total = 0;
  for (const ir::Edge& edge : state.edges()) {
    if (edge.memlet.is_empty()) continue;
    const bool tasklet_adjacent =
        state.node(edge.src).kind == ir::NodeKind::Tasklet ||
        state.node(edge.dst).kind == ir::NodeKind::Tasklet;
    if (tasklet_adjacent) {
      static_total +=
          analysis::total_edge_elements(state, edge).evaluate(env);
    }
  }
  sim::AccessTrace trace = sim::simulate(program.sdfg, env);
  EXPECT_EQ(static_total, static_cast<std::int64_t>(trace.events.size()));
}

TEST_P(Fuzz, FusionPreservesSemantics) {
  RandomProgram program = random_program(GetParam());
  ir::Sdfg fused = program.sdfg;
  const int fusions = transforms::fuse_all(fused);
  EXPECT_TRUE(ir::validate(fused).empty());
  const symbolic::SymbolMap env{{"N", 7}};
  EXPECT_EQ(run_random(program.sdfg, program, env, GetParam()),
            run_random(fused, program, env, GetParam()))
      << "after " << fusions << " fusions";
  // Fusion must never increase the total logical movement.
  EXPECT_LE(analysis::total_movement_bytes(fused).evaluate(env),
            analysis::total_movement_bytes(program.sdfg).evaluate(env));
}

TEST_P(Fuzz, CachePredictionMatchesExactSimulator) {
  RandomProgram program = random_program(GetParam());
  sim::AccessTrace trace = sim::simulate(program.sdfg, {{"N", 6}});
  sim::StackDistanceResult distances = sim::stack_distances(trace, 64);
  for (std::int64_t lines : {4, 16}) {
    sim::MissReport predicted =
        sim::classify_misses(trace, distances, lines);
    sim::CacheSimResult truth = sim::simulate_cache(
        trace, sim::CacheConfig{64, lines * 64, 0});
    EXPECT_EQ(predicted.total.misses(), truth.total.misses());
  }
}

TEST_P(Fuzz, NaiveAndFastDistancesAgree) {
  RandomProgram program = random_program(GetParam());
  sim::AccessTrace trace = sim::simulate(program.sdfg, {{"N", 4}});
  for (int line : {16, 64}) {
    EXPECT_EQ(sim::stack_distances(trace, line).distances,
              sim::stack_distances_naive(trace, line).distances);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range(1, 13));

}  // namespace
}  // namespace dmv
