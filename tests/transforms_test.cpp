#include "dmv/transforms/transforms.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dmv/analysis/analysis.hpp"
#include "dmv/builder/program_builder.hpp"
#include "dmv/exec/interpreter.hpp"
#include "dmv/ir/validate.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::transforms {
namespace {

using builder::ProgramBuilder;

// Producer map writes transient T, consumer map reads it element-wise.
ir::Sdfg fusible_pair() {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.transient("T", {"N"});
  p.array("B", {"N"});
  p.state("s");
  p.mapped_tasklet("inc", {{"i", "0:N-1"}}, {{"v", "A", "i"}}, "o = v + 1",
                   {{"o", "T", "i"}});
  p.mapped_tasklet("dbl", {{"j", "0:N-1"}}, {{"v", "T", "j"}}, "o = v * 2",
                   {{"o", "B", "j"}});
  return p.take();
}

std::vector<double> run_program(ir::Sdfg& sdfg,
                                const symbolic::SymbolMap& env,
                                const std::string& input,
                                const std::string& output) {
  exec::Buffers buffers(sdfg, env);
  std::vector<double> in_values(
      buffers.layout(input).total_elements());
  for (std::size_t i = 0; i < in_values.size(); ++i) {
    in_values[i] = 0.5 * static_cast<double>(i) - 3.0;
  }
  buffers.set_logical(input, in_values);
  exec::run(sdfg, env, buffers);
  return buffers.logical(output);
}

TEST(MapFusion, FindsTheCandidate) {
  ir::Sdfg sdfg = fusible_pair();
  std::vector<FusionCandidate> candidates = find_fusion_candidates(sdfg);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].transient, "T");
}

TEST(MapFusion, ApplyRemovesTransientAndMap) {
  ir::Sdfg sdfg = fusible_pair();
  apply_map_fusion(sdfg, find_fusion_candidates(sdfg)[0]);
  ir::validate_or_throw(sdfg);
  EXPECT_FALSE(sdfg.has_array("T"));
  int entries = 0;
  for (const ir::Node& node : sdfg.states()[0].nodes()) {
    if (node.kind == ir::NodeKind::MapEntry) ++entries;
  }
  EXPECT_EQ(entries, 1);
}

TEST(MapFusion, PreservesSemantics) {
  ir::Sdfg original = fusible_pair();
  ir::Sdfg fused = fusible_pair();
  EXPECT_EQ(fuse_all(fused), 1);
  symbolic::SymbolMap env{{"N", 11}};
  EXPECT_EQ(run_program(original, env, "A", "B"),
            run_program(fused, env, "A", "B"));
}

TEST(MapFusion, ParameterRenaming) {
  // Consumer uses different parameter names; fusion renames its memlets.
  ir::Sdfg sdfg = fusible_pair();
  fuse_all(sdfg);
  for (const ir::Edge& edge : sdfg.states()[0].edges()) {
    if (edge.memlet.is_empty()) continue;
    for (const std::string& symbol :
         edge.memlet.subset.num_elements().free_symbols()) {
      EXPECT_NE(symbol, "j") << "consumer param should be renamed to i";
    }
  }
}

TEST(MapFusion, RemovesTheDataMovement) {
  // The point of the optimization in the paper: the transient's volume
  // disappears from the program.
  ir::Sdfg sdfg = fusible_pair();
  auto volume = [&](const ir::Sdfg& graph) {
    std::int64_t total = 0;
    for (const ir::State& state : graph.states()) {
      for (const ir::Edge& edge : state.edges()) {
        if (edge.memlet.is_empty()) continue;
        total += dmv::analysis::total_edge_elements(state, edge)
                     .evaluate({{"N", 16}});
      }
    }
    return total;
  };
  const std::int64_t before = volume(sdfg);
  fuse_all(sdfg);
  const std::int64_t after = volume(sdfg);
  // T contributed 4 edges x 16 elements.
  EXPECT_EQ(before - after, 64);
}

TEST(MapFusion, RejectsMismatchedRanges) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.transient("T", {"N"});
  p.array("B", {"N"});
  p.state("s");
  p.mapped_tasklet("inc", {{"i", "0:N-1"}}, {{"v", "A", "i"}}, "o = v + 1",
                   {{"o", "T", "i"}});
  p.mapped_tasklet("half", {{"j", "0:N-2"}}, {{"v", "T", "j"}}, "o = v",
                   {{"o", "B", "j"}});
  ir::Sdfg sdfg = p.take();
  EXPECT_TRUE(find_fusion_candidates(sdfg).empty());
}

TEST(MapFusion, RejectsNeighborAccess) {
  // Consumer reads T[j+1]: not element-wise aligned, not fusible.
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N + 1"});
  p.transient("T", {"N + 1"});
  p.array("B", {"N"});
  p.state("s");
  p.mapped_tasklet("inc", {{"i", "0:N"}}, {{"v", "A", "i"}}, "o = v + 1",
                   {{"o", "T", "i"}});
  p.mapped_tasklet("shift", {{"i", "0:N-1"}}, {{"v", "T", "i + 1"}},
                   "o = v", {{"o", "B", "i"}});
  ir::Sdfg sdfg = p.take();
  EXPECT_TRUE(find_fusion_candidates(sdfg).empty());
}

TEST(MapFusion, RejectsMultiConsumerTransient) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.transient("T", {"N"});
  p.array("B", {"N"});
  p.array("C", {"N"});
  p.state("s");
  p.mapped_tasklet("inc", {{"i", "0:N-1"}}, {{"v", "A", "i"}}, "o = v + 1",
                   {{"o", "T", "i"}});
  p.mapped_tasklet("use1", {{"i", "0:N-1"}}, {{"v", "T", "i"}}, "o = v",
                   {{"o", "B", "i"}});
  p.mapped_tasklet("use2", {{"i", "0:N-1"}}, {{"v", "T", "i"}}, "o = v",
                   {{"o", "C", "i"}});
  ir::Sdfg sdfg = p.take();
  EXPECT_TRUE(find_fusion_candidates(sdfg).empty());
}

TEST(MapFusion, ChainFusesToFixpoint) {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.transient("T1", {"N"});
  p.transient("T2", {"N"});
  p.array("B", {"N"});
  p.state("s");
  p.mapped_tasklet("a", {{"i", "0:N-1"}}, {{"v", "A", "i"}}, "o = v + 1",
                   {{"o", "T1", "i"}});
  p.mapped_tasklet("b", {{"i", "0:N-1"}}, {{"v", "T1", "i"}}, "o = v * 3",
                   {{"o", "T2", "i"}});
  p.mapped_tasklet("c", {{"i", "0:N-1"}}, {{"v", "T2", "i"}}, "o = v - 2",
                   {{"o", "B", "i"}});
  ir::Sdfg original = p.take();
  ir::Sdfg fused = original;
  EXPECT_EQ(fuse_all(fused), 2);
  ir::validate_or_throw(fused);
  symbolic::SymbolMap env{{"N", 6}};
  EXPECT_EQ(run_program(original, env, "A", "B"),
            run_program(fused, env, "A", "B"));
}

TEST(LoopInterchange, PermutesParamsAndRanges) {
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  ir::State& state = sdfg.states()[0];
  ir::NodeId entry = ir::kNoNode;
  for (const ir::Node& node : state.nodes()) {
    if (node.kind == ir::NodeKind::MapEntry) entry = node.id;
  }
  loop_interchange(state, entry, {2, 0, 1});
  EXPECT_EQ(state.node(entry).map.params,
            (std::vector<std::string>{"k", "i", "j"}));
  ir::validate_or_throw(sdfg);
}

TEST(LoopInterchange, RejectsBadPermutation) {
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  ir::State& state = sdfg.states()[0];
  ir::NodeId entry = ir::kNoNode;
  for (const ir::Node& node : state.nodes()) {
    if (node.kind == ir::NodeKind::MapEntry) entry = node.id;
  }
  EXPECT_THROW(loop_interchange(state, entry, {0, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(loop_interchange(state, entry, {0, 1}),
               std::invalid_argument);
  EXPECT_THROW(loop_interchange(state, 0, {0}), std::invalid_argument);
}

TEST(PermuteDimensions, RewritesDescriptorAndMemlets) {
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  permute_dimensions(sdfg, "in_field", {2, 0, 1});
  ir::validate_or_throw(sdfg);
  const ir::DataDescriptor& d = sdfg.array("in_field");
  symbolic::SymbolMap env{{"I", 8}, {"J", 8}, {"K", 5}};
  EXPECT_EQ(d.shape[0].evaluate(env), 5);
  EXPECT_EQ(d.shape[1].evaluate(env), 12);
  // Memlets now lead with the k index.
  for (const ir::Edge& edge : sdfg.states()[0].edges()) {
    if (edge.memlet.data != "in_field") continue;
    EXPECT_EQ(edge.memlet.subset.rank(), 3);
    const auto symbols = edge.memlet.subset.ranges[0].begin.free_symbols();
    if (!symbols.empty()) {
      EXPECT_TRUE(symbols.contains("k") || symbols.contains("K"))
          << edge.memlet.to_string();
    }
  }
}

TEST(PermuteDimensions, PreservesSemantics) {
  ir::Sdfg original = workloads::hdiff(workloads::HdiffVariant::Baseline);
  ir::Sdfg permuted = workloads::hdiff(workloads::HdiffVariant::Reshaped);
  symbolic::SymbolMap env = workloads::hdiff_local();

  auto run_variant = [&](ir::Sdfg& graph) {
    exec::Buffers buffers(graph, env);
    // in_field has different LOGICAL shapes in the two variants, so fill
    // by original coordinates.
    const auto& layout = buffers.layout("in_field");
    for (std::int64_t flat = 0; flat < layout.total_elements(); ++flat) {
      auto idx = layout.unflatten(flat);
      // Map to canonical (i, j, k) regardless of permutation.
      std::int64_t i, j, k;
      if (idx.size() == 3 && layout.shape[0] == 5) {  // [K, I+4, J+4]
        k = idx[0];
        i = idx[1];
        j = idx[2];
      } else {  // [I+4, J+4, K]
        i = idx[0];
        j = idx[1];
        k = idx[2];
      }
      buffers.at("in_field", idx) =
          std::sin(static_cast<double>(i * 100 + j * 10 + k));
    }
    std::vector<double> coefficients(
        buffers.layout("coeff").total_elements(), 0.03);
    buffers.set_logical("coeff", coefficients);
    exec::run(graph, env, buffers);
    return buffers.logical("out_field");
  };

  EXPECT_EQ(run_variant(original), run_variant(permuted));
}

TEST(PermuteDimensions, RejectsBadPermutation) {
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  EXPECT_THROW(permute_dimensions(sdfg, "in_field", {0, 1}),
               std::invalid_argument);
  EXPECT_THROW(permute_dimensions(sdfg, "in_field", {0, 0, 1}),
               std::invalid_argument);
}

TEST(StridePadding, PadsRowStride) {
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Reordered);
  pad_innermost_stride(sdfg, "in_field", 8);
  const ir::DataDescriptor& d = sdfg.array("in_field");
  symbolic::SymbolMap env{{"I", 8}, {"J", 8}, {"K", 5}};
  // [K, I+4, J+4] with rows of 12 padded to 16.
  EXPECT_EQ(d.strides[2].evaluate(env), 1);
  EXPECT_EQ(d.strides[1].evaluate(env), 16);
  EXPECT_EQ(d.strides[0].evaluate(env), 16 * 12);
  EXPECT_GT(d.allocated_elements().evaluate(env),
            d.total_elements().evaluate(env));
}

TEST(StridePadding, PreservesSemantics) {
  ir::Sdfg plain = workloads::hdiff(workloads::HdiffVariant::Reordered);
  ir::Sdfg padded = workloads::hdiff(workloads::HdiffVariant::Padded);
  symbolic::SymbolMap env = workloads::hdiff_local();
  auto run_variant = [&](ir::Sdfg& graph) {
    exec::Buffers buffers(graph, env);
    std::vector<double> in(buffers.layout("in_field").total_elements());
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = std::sin(static_cast<double>(i));
    }
    buffers.set_logical("in_field", in);
    std::vector<double> coefficients(
        buffers.layout("coeff").total_elements(), 0.03);
    buffers.set_logical("coeff", coefficients);
    exec::run(graph, env, buffers);
    return buffers.logical("out_field");
  };
  EXPECT_EQ(run_variant(plain), run_variant(padded));
}

TEST(StridePadding, ArgumentChecks) {
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  EXPECT_THROW(pad_innermost_stride(sdfg, "in_field", 0),
               std::invalid_argument);
  ProgramBuilder p("p");
  p.symbols({"N"});
  p.array("A", {"N"});
  ir::Sdfg one_d = p.sdfg();
  EXPECT_THROW(pad_innermost_stride(one_d, "A", 8), std::invalid_argument);
}

}  // namespace
}  // namespace dmv::transforms
