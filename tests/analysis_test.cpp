#include "dmv/analysis/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dmv/builder/program_builder.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::analysis {
namespace {

using builder::ProgramBuilder;

ir::Sdfg elementwise() {
  ProgramBuilder p("prog");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.array("B", {"N"});
  p.state("s");
  p.mapped_tasklet("double", {{"i", "0:N-1"}}, {{"v", "A", "i"}},
                   "o = v * 2 + 1", {{"o", "B", "i"}});
  return p.take();
}

TEST(Volume, ElementwiseMapMovesNElementsPerSide) {
  ir::Sdfg sdfg = elementwise();
  std::vector<EdgeVolume> volumes = edge_volumes(sdfg);
  ASSERT_EQ(volumes.size(), 4u);
  for (const EdgeVolume& volume : volumes) {
    EXPECT_EQ(volume.elements.evaluate({{"N", 10}}), 10)
        << volume.data << " edge";
    EXPECT_EQ(volume.bytes.evaluate({{"N", 10}}), 80);
  }
  // Total: N elements over each of the 4 edges (2 per side).
  EXPECT_EQ(total_movement_bytes(sdfg).evaluate({{"N", 10}}), 320);
}

TEST(Volume, MatmulDistinguishesTrafficFromFootprint) {
  ir::Sdfg sdfg = workloads::matmul();
  symbolic::SymbolMap env{{"M", 4}, {"K", 5}, {"N", 6}};
  const ir::State& state = sdfg.states()[0];
  for (const ir::Edge& edge : state.edges()) {
    if (edge.memlet.is_empty()) continue;
    const ir::Node& src = state.node(edge.src);
    const ir::Node& dst = state.node(edge.dst);
    const std::int64_t total =
        total_edge_elements(state, edge).evaluate(env);
    if (src.kind == ir::NodeKind::Tasklet ||
        dst.kind == ir::NodeKind::Tasklet) {
      // Inner edges: one element per (i,j,k) iteration = traffic.
      EXPECT_EQ(total, 4 * 5 * 6);
    } else {
      // Boundary edges: the container footprint (A: M*K, B: K*N, C: M*N).
      const std::string& data = edge.memlet.data;
      const std::int64_t expected =
          data == "A" ? 4 * 5 : (data == "B" ? 5 * 6 : 4 * 6);
      EXPECT_EQ(total, expected) << data;
    }
  }
}

TEST(Volume, EdgeScopeAndIterations) {
  ir::Sdfg sdfg = elementwise();
  const ir::State& state = sdfg.states()[0];
  for (const ir::Edge& edge : state.edges()) {
    const ir::NodeId scope = edge_scope(state, edge);
    const ir::Node& src = state.node(edge.src);
    if (src.kind == ir::NodeKind::Access ||
        src.kind == ir::NodeKind::MapExit) {
      EXPECT_EQ(scope, ir::kNoNode);
      EXPECT_EQ(scope_iterations(state, scope).evaluate({{"N", 9}}), 1);
    } else {
      EXPECT_NE(scope, ir::kNoNode);
      EXPECT_EQ(scope_iterations(state, scope).evaluate({{"N", 9}}), 9);
    }
  }
}

TEST(Flops, CountsScaleWithIterations) {
  ir::Sdfg sdfg = elementwise();
  // "o = v * 2 + 1": one mul + one add per iteration.
  EXPECT_EQ(total_operations(sdfg).evaluate({{"N", 10}}), 20);
  std::vector<NodeOps> ops = tasklet_operation_counts(sdfg);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].label, "double");
}

TEST(Flops, MatmulIsTwoFlopsPerInnerIteration) {
  ir::Sdfg sdfg = workloads::matmul();
  // One multiply per (i,j,k); the WCR add is modeled by the reduction.
  EXPECT_EQ(total_operations(sdfg).evaluate({{"M", 4}, {"K", 5}, {"N", 6}}),
            4 * 5 * 6);
}

TEST(Intensity, ElementwiseIsLow) {
  ir::Sdfg sdfg = elementwise();
  std::vector<MapIntensity> intensities =
      map_intensities(sdfg, {{"N", 64}});
  ASSERT_EQ(intensities.size(), 1u);
  // 2 ops vs 16 boundary bytes per element.
  EXPECT_DOUBLE_EQ(intensities[0].intensity, 2.0 / 16.0);
}

TEST(Intensity, MatmulGrowsWithK) {
  ir::Sdfg small = workloads::matmul();
  const ir::State& state = small.states()[0];
  ir::NodeId entry = ir::kNoNode;
  for (const ir::Node& node : state.nodes()) {
    if (node.kind == ir::NodeKind::MapEntry) entry = node.id;
  }
  ASSERT_NE(entry, ir::kNoNode);
  const double at_small = map_arithmetic_intensity(
      small, state, entry, {{"M", 8}, {"N", 8}, {"K", 8}});
  const double at_large = map_arithmetic_intensity(
      small, state, entry, {{"M", 8}, {"N", 8}, {"K", 64}});
  EXPECT_GT(at_large, at_small);
}

TEST(Intensity, RejectsNonMapNode) {
  ir::Sdfg sdfg = elementwise();
  const ir::State& state = sdfg.states()[0];
  ir::NodeId tasklet = ir::kNoNode;
  for (const ir::Node& node : state.nodes()) {
    if (node.kind == ir::NodeKind::Tasklet) tasklet = node.id;
  }
  ASSERT_NE(tasklet, ir::kNoNode);
  EXPECT_THROW(
      map_arithmetic_intensity(sdfg, state, tasklet, {{"N", 4}}),
      std::invalid_argument);
}

TEST(RankedEdges, SortedDescending) {
  ir::Sdfg sdfg = workloads::bert_encoder(workloads::BertStage::Baseline);
  std::vector<RankedEdge> ranked =
      rank_edges_by_volume(sdfg, workloads::bert_small());
  ASSERT_GT(ranked.size(), 10u);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].bytes, ranked[i].bytes);
  }
}

TEST(Diff, FusionShowsEliminatedContainers) {
  ir::Sdfg before = workloads::bert_encoder(workloads::BertStage::Baseline);
  ir::Sdfg after = workloads::bert_encoder(workloads::BertStage::Fused2);
  MovementDiff diff =
      diff_movement(before, after, workloads::bert_small());
  EXPECT_LT(diff.after_total, diff.before_total);
  // The fused transients appear with zero traffic on the after side.
  bool found_eliminated = false;
  for (const ContainerDelta& delta : diff.containers) {
    if (delta.data == "D") {
      EXPECT_GT(delta.before_bytes, 0);
      EXPECT_EQ(delta.after_bytes, 0);
      found_eliminated = true;
    }
  }
  EXPECT_TRUE(found_eliminated);
  // Sorted by absolute delta, descending.
  for (std::size_t i = 1; i < diff.containers.size(); ++i) {
    EXPECT_GE(std::abs(diff.containers[i - 1].delta()),
              std::abs(diff.containers[i].delta()));
  }
}

TEST(Diff, IdenticalProgramsShowNoDelta) {
  ir::Sdfg program = workloads::matmul();
  MovementDiff diff =
      diff_movement(program, program, workloads::matmul_fig5());
  EXPECT_EQ(diff.before_total, diff.after_total);
  for (const ContainerDelta& delta : diff.containers) {
    EXPECT_EQ(delta.delta(), 0);
  }
}

TEST(Scaling, DetectsPolynomialDegrees) {
  // metric = N^2 * M: exponent 2 in N, 1 in M.
  symbolic::Expr metric = symbolic::Expr::symbol("N") *
                          symbolic::Expr::symbol("N") *
                          symbolic::Expr::symbol("M");
  auto result = scaling_exponents(metric, {{"N", 8}, {"M", 8}});
  ASSERT_EQ(result.size(), 2u);
  for (const SymbolScaling& s : result) {
    if (s.symbol == "N") EXPECT_NEAR(s.exponent, 2.0, 1e-9);
    if (s.symbol == "M") EXPECT_NEAR(s.exponent, 1.0, 1e-9);
  }
}

TEST(Scaling, MatmulMovementDegrees) {
  ir::Sdfg sdfg = workloads::matmul();
  auto result = movement_scaling(sdfg, {{"M", 8}, {"N", 8}, {"K", 8}});
  for (const SymbolScaling& s : result) {
    // Inner traffic M*N*K dominates: every symbol is (close to) linear.
    EXPECT_NEAR(s.exponent, 1.0, 0.15) << s.symbol;
  }
}

TEST(Scaling, RejectsBadFactor) {
  EXPECT_THROW(
      scaling_exponents(symbolic::Expr::symbol("N"), {{"N", 4}}, 1),
      std::invalid_argument);
}

TEST(Scaling, RejectsMissingBaseSymbol) {
  EXPECT_THROW(scaling_exponents(symbolic::Expr::symbol("N"), {{"M", 4}}),
               std::invalid_argument);
}

TEST(Scaling, BertDominantParameters) {
  // §IV-D slider analysis at the BERT-LARGE operating point: the
  // sequence length SM is the only superlinear parameter (the SM^2
  // attention traffic), while emb and B stay (sub)linear.
  ir::Sdfg sdfg = workloads::bert_encoder(workloads::BertStage::Baseline);
  auto result = movement_scaling(sdfg, workloads::bert_large());
  double sm_exponent = 0, emb_exponent = 0, b_exponent = 0;
  for (const SymbolScaling& s : result) {
    if (s.symbol == "SM") sm_exponent = s.exponent;
    if (s.symbol == "emb") emb_exponent = s.exponent;
    if (s.symbol == "B") b_exponent = s.exponent;
  }
  EXPECT_GT(sm_exponent, 1.05);
  EXPECT_GT(sm_exponent, emb_exponent);
  EXPECT_LE(emb_exponent, 1.0 + 1e-9);
  EXPECT_NEAR(b_exponent, 1.0, 0.05);
}

}  // namespace
}  // namespace dmv::analysis
