#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "dmv/builder/program_builder.hpp"
#include "dmv/par/par.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/symbolic/batched.hpp"
#include "dmv/symbolic/compiled.hpp"
#include "dmv/symbolic/expr.hpp"
#include "dmv/symbolic/parser.hpp"

// Contract of the lane-batched evaluator: for every lane L, the batched
// result equals scalar evaluation of the same program against lane L's
// environment — including WHICH inputs fault. A fault bit must be set
// exactly when the scalar engine throws (std::domain_error for division
// or modulo by zero and negative Pow exponents; UnboundSymbolError for
// an unbound slot, which faults all lanes); non-faulting lanes must be
// bit-identical. The simulator-level tests then pin the tail-mask and
// fault-ordering behavior of the batched innermost loop.

namespace dmv::symbolic {
namespace {

const std::vector<std::string> kSymbols{"N", "M", "K", "i", "j"};

// Same generator family as compiled_expr_test: Pow exponents stay small
// non-negative constants; zero divisors are part of the contract.
Expr random_expr(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> leaf_pick(0, 1);
  std::uniform_int_distribution<std::int64_t> constant(-5, 5);
  std::uniform_int_distribution<std::size_t> symbol(0, kSymbols.size() - 1);
  if (depth <= 0 || std::uniform_int_distribution<int>(0, 3)(rng) == 0) {
    return leaf_pick(rng) == 0 ? Expr::constant(constant(rng))
                               : Expr::symbol(kSymbols[symbol(rng)]);
  }
  std::uniform_int_distribution<int> kind_pick(0, 7);
  const ExprKind kinds[] = {ExprKind::Add,      ExprKind::Mul,
                            ExprKind::FloorDiv, ExprKind::CeilDiv,
                            ExprKind::Mod,      ExprKind::Min,
                            ExprKind::Max,      ExprKind::Pow};
  const ExprKind kind = kinds[kind_pick(rng)];
  if (kind == ExprKind::Pow) {
    std::uniform_int_distribution<std::int64_t> exponent(0, 3);
    return Expr::make(kind, {random_expr(rng, depth - 1), Expr(exponent(rng))});
  }
  std::vector<Expr> operands;
  const int arity = (kind == ExprKind::Add || kind == ExprKind::Mul)
                        ? std::uniform_int_distribution<int>(2, 3)(rng)
                        : 2;
  for (int i = 0; i < arity; ++i) {
    operands.push_back(random_expr(rng, depth - 1));
  }
  return Expr::make(kind, std::move(operands));
}

std::optional<std::int64_t> guarded_scalar(const CompiledExpr& compiled,
                                           const std::vector<std::int64_t>& env,
                                           const std::vector<char>& bound) {
  try {
    return compiled.evaluate(env.data(), bound.data());
  } catch (const std::domain_error&) {
    return std::nullopt;
  }
}

// Checks `expr` against per-lane environments where EVERY slot carries
// independent lane values (strictly more general than the simulator's
// one-varying-slot usage).
void check_against_scalar(const Expr& expr,
                          const std::vector<std::vector<std::int64_t>>&
                              lane_envs /* [lane][slot] */) {
  SymbolTable table;
  const CompiledExpr scalar = CompiledExpr::compile(expr, table);
  const BatchedCompiledExpr batched(scalar);
  const int width = static_cast<int>(lane_envs.size());
  const std::size_t slots = table.size();

  const std::vector<std::int64_t> zeros(slots, 0);
  const std::vector<char> all_bound(slots, 1);
  LaneEnv env;
  env.reset(zeros, all_bound, width);
  std::vector<std::int64_t> per_slot(static_cast<std::size_t>(width));
  for (std::size_t s = 0; s < slots; ++s) {
    for (int l = 0; l < width; ++l) {
      per_slot[static_cast<std::size_t>(l)] = lane_envs[l][s];
    }
    env.set_lanes(static_cast<int>(s), per_slot);
  }

  std::vector<std::int64_t> out(static_cast<std::size_t>(width));
  const std::uint32_t faults = batched.evaluate(env, out.data());
  for (int l = 0; l < width; ++l) {
    const auto expected = guarded_scalar(scalar, lane_envs[l], all_bound);
    const bool faulted = (faults >> l) & 1u;
    ASSERT_EQ(expected.has_value(), !faulted)
        << expr.to_string() << " lane " << l;
    if (expected) {
      ASSERT_EQ(*expected, out[static_cast<std::size_t>(l)])
          << expr.to_string() << " lane " << l;
    }
  }
}

TEST(BatchedExpr, MatchesScalarOnRandomExpressionsAndBindings) {
  std::mt19937 rng(20260809);
  std::uniform_int_distribution<std::int64_t> value(-10, 10);
  for (int trial = 0; trial < 2000; ++trial) {
    const Expr expr = random_expr(rng, 4);
    // Cycle widths: the specialized 4- and 8-lane paths plus a width
    // with no template instantiation (generic fallback).
    const int width = (trial % 3 == 0) ? 4 : (trial % 3 == 1) ? 8 : 5;
    SymbolTable probe;
    CompiledExpr::compile(expr, probe);
    std::vector<std::vector<std::int64_t>> lane_envs(
        static_cast<std::size_t>(width),
        std::vector<std::int64_t>(probe.size()));
    for (auto& lane : lane_envs) {
      for (auto& slot : lane) slot = value(rng);
    }
    check_against_scalar(expr, lane_envs);
  }
}

TEST(BatchedExpr, DomainFaultsArePerLane) {
  // i / j, ceil(i / j), i % j, i ** j: lanes where j makes the scalar
  // helper throw must fault, and ONLY those lanes.
  const Expr i = Expr::symbol("i");
  const Expr j = Expr::symbol("j");
  const struct {
    Expr expr;
    std::vector<std::int64_t> j_values;  // One per lane, width 8.
  } cases[] = {
      {Expr::make(ExprKind::FloorDiv, {i, j}), {3, 0, -2, 1, 0, 7, -1, 5}},
      {Expr::make(ExprKind::CeilDiv, {i, j}), {0, 4, 2, 0, -3, 1, 6, 0}},
      {Expr::make(ExprKind::Mod, {i, j}), {2, -5, 0, 3, 1, 0, 0, -4}},
      {Expr::make(ExprKind::Pow, {i, j}), {0, 2, -1, 3, -7, 1, 0, -2}},
  };
  for (const auto& test_case : cases) {
    std::vector<std::vector<std::int64_t>> lane_envs;
    for (std::size_t l = 0; l < test_case.j_values.size(); ++l) {
      // Slot order is first-intern order: i then j.
      lane_envs.push_back(
          {static_cast<std::int64_t>(l) + 5, test_case.j_values[l]});
    }
    check_against_scalar(test_case.expr, lane_envs);
  }
}

TEST(BatchedExpr, UnboundSlotFaultsEveryLane) {
  SymbolTable table;
  const CompiledExpr scalar = CompiledExpr::compile(parse("N + M"), table);
  const BatchedCompiledExpr batched(scalar);
  std::vector<std::int64_t> values;
  std::vector<char> bound;
  table.bind(SymbolMap{{"N", 3}}, values, bound);
  LaneEnv env;
  env.reset(values, bound, 8);
  std::int64_t out[8];
  EXPECT_EQ(batched.evaluate(env, out), 0xffu);
  // Binding the slot clears the fault and matches scalar.
  env.broadcast(table.lookup("M"), 4);
  EXPECT_EQ(batched.evaluate(env, out), 0u);
  for (int l = 0; l < 8; ++l) EXPECT_EQ(out[l], 7);
}

TEST(BatchedExpr, DeepExpressionUsesHeapStack) {
  Expr expr = Expr::symbol("N");
  for (int n = 0; n < 80; ++n) {
    expr = Expr::make(ExprKind::Min, {Expr(1000 + n), expr});
  }
  std::vector<std::vector<std::int64_t>> lane_envs;
  for (int l = 0; l < 8; ++l) {
    lane_envs.push_back({40 + static_cast<std::int64_t>(l)});
  }
  check_against_scalar(expr, lane_envs);
}

}  // namespace
}  // namespace dmv::symbolic

namespace dmv::sim {
namespace {

void expect_traces_identical(const AccessTrace& a, const AccessTrace& b) {
  ASSERT_EQ(a.containers, b.containers);
  ASSERT_EQ(a.executions, b.executions);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const AccessEvent& x = a.events[i];
    const AccessEvent& y = b.events[i];
    ASSERT_EQ(x.container, y.container) << "event " << i;
    ASSERT_EQ(x.flat, y.flat) << "event " << i;
    ASSERT_EQ(x.is_write, y.is_write) << "event " << i;
    ASSERT_EQ(x.timestep, y.timestep) << "event " << i;
    ASSERT_EQ(x.execution, y.execution) << "event " << i;
    ASSERT_EQ(x.tasklet, y.tasklet) << "event " << i;
  }
}

ir::Sdfg one_dim_program() {
  builder::ProgramBuilder program("tail1d");
  program.symbols({"N"});
  program.array("A", {"N + 2"});
  program.array("B", {"N + 2"});
  program.state("s");
  program.mapped_tasklet("t", {{"i", "0:N-1"}}, {{"a", "A", "i"}},
                         "b = a + 1", {{"b", "B", "i"}});
  return program.take();
}

ir::Sdfg two_dim_program() {
  builder::ProgramBuilder program("tail2d");
  program.symbols({"N"});
  program.array("A", {"4", "N + 2"});
  program.array("B", {"4", "N + 2"});
  program.state("s");
  program.mapped_tasklet("t", {{"i", "0:3"}, {"j", "0:N-1"}},
                         {{"a", "A", "i, j"}}, "b = a + 1",
                         {{"b", "B", "i, j"}});
  return program.take();
}

TEST(BatchedTrace, TailMaskCoversEveryTripCount) {
  // Trip counts around the lane width W=8: 0, 1, W-1, W, W+1 (and a
  // multi-batch 2W+3). The batched trace must equal the scalar trace
  // exactly — the padded tail lanes must not emit.
  const ir::Sdfg programs[] = {one_dim_program(), two_dim_program()};
  for (const ir::Sdfg& sdfg : programs) {
    for (const std::int64_t n : {0, 1, 7, 8, 9, 19}) {
      const symbolic::SymbolMap binding{{"N", n}};
      SimulationOptions scalar;
      scalar.lane_width = 1;
      scalar.parallel_trace = false;
      SimulationOptions batched;
      batched.lane_width = 8;
      batched.parallel_trace = false;
      SCOPED_TRACE("N=" + std::to_string(n));
      expect_traces_identical(simulate(sdfg, binding, scalar),
                              simulate(sdfg, binding, batched));
    }
  }
}

// Records the exact emission sequence up to an exception.
class RecordingSink : public EventSink {
 public:
  void on_trace_header(const AccessTrace&) override {}
  void on_event(const AccessEvent& event) override { events.push_back(event); }
  void on_trace_end(std::int64_t) override {}
  std::vector<AccessEvent> events;
};

TEST(BatchedTrace, FaultingLaneReplaysAtExactScalarPosition) {
  // A[i % (4 - i)] throws std::domain_error (modulo by zero) at i == 4 —
  // lane 4 of the first batch. The batched engine must emit exactly the
  // events of iterations 0..3 and then throw, like the scalar loop.
  builder::ProgramBuilder program("faulty");
  program.array("A", {"16"});
  program.array("B", {"16"});
  program.state("s");
  program.mapped_tasklet("t", {{"i", "0:9"}}, {{"a", "A", "i % (4 - i)"}},
                         "b = a", {{"b", "B", "i"}});
  const ir::Sdfg sdfg = program.take();

  auto run = [&](int lanes) {
    SimulationOptions options;
    options.lane_width = lanes;
    options.parallel_trace = false;
    RecordingSink sink;
    bool threw = false;
    try {
      simulate_stream(sdfg, {}, sink, options);
    } catch (const std::domain_error&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "lanes=" << lanes;
    return sink.events;
  };
  const std::vector<AccessEvent> scalar = run(1);
  const std::vector<AccessEvent> batched = run(8);
  // Iterations 0..3 emit one read + one write each.
  ASSERT_EQ(scalar.size(), 8u);
  ASSERT_EQ(batched.size(), scalar.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(scalar[i].container, batched[i].container) << "event " << i;
    EXPECT_EQ(scalar[i].flat, batched[i].flat) << "event " << i;
    EXPECT_EQ(scalar[i].is_write, batched[i].is_write) << "event " << i;
    EXPECT_EQ(scalar[i].timestep, batched[i].timestep) << "event " << i;
  }
}

TEST(BatchedTrace, UnboundSymbolThrowsIdentically) {
  // Bounds referencing a never-bound symbol: both engines must throw
  // UnboundSymbolError (here the invariant-hoist path faults and
  // replays scalar).
  const ir::Sdfg sdfg = one_dim_program();
  for (const int lanes : {1, 8}) {
    SimulationOptions options;
    options.lane_width = lanes;
    options.parallel_trace = false;
    EXPECT_THROW(simulate(sdfg, {}, options), symbolic::UnboundSymbolError)
        << "lanes=" << lanes;
  }
}

TEST(BatchedTrace, OversizedLaneWidthIsClamped) {
  const ir::Sdfg sdfg = one_dim_program();
  const symbolic::SymbolMap binding{{"N", 37}};
  SimulationOptions scalar;
  scalar.lane_width = 1;
  SimulationOptions huge;
  huge.lane_width = 1 << 20;  // Clamped to kMaxLaneWidth.
  SimulationOptions negative;
  negative.lane_width = -3;  // Clamped to scalar.
  const AccessTrace reference = simulate(sdfg, binding, scalar);
  expect_traces_identical(reference, simulate(sdfg, binding, huge));
  expect_traces_identical(reference, simulate(sdfg, binding, negative));
}

}  // namespace
}  // namespace dmv::sim
