#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "dmv/par/par.hpp"
#include "dmv/sim/pipeline.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/workloads/workloads.hpp"

// MetricPipeline contract: the fused pass (materialized and streaming)
// is bit-identical to the standalone metric passes — fusion and arena
// reuse are pure performance changes. These tests drive hdiff and bert
// across several symbol bindings and require exact equality on every
// enabled consumer, plus the O(1)-event-storage property of streaming.

namespace dmv::sim {
namespace {

PipelineConfig full_config() {
  PipelineConfig config;
  config.line_size = 64;
  config.counts = true;
  config.miss_threshold_lines = 64;
  config.keep_distances = true;
  config.element_stats = true;
  config.cache = CacheConfig{};
  config.movement = true;
  return config;
}

void expect_stats_equal(const MissStats& a, const MissStats& b) {
  EXPECT_EQ(a.cold, b.cold);
  EXPECT_EQ(a.capacity, b.capacity);
  EXPECT_EQ(a.hits, b.hits);
}

// Reference values from the standalone passes, field by field.
void expect_matches_standalone(const PipelineResult& result,
                               const AccessTrace& trace,
                               const PipelineConfig& config) {
  EXPECT_EQ(result.events, static_cast<std::int64_t>(trace.events.size()));
  EXPECT_EQ(result.executions, trace.executions);

  const AccessCounts counts = count_accesses(trace);
  EXPECT_EQ(result.counts.reads, counts.reads);
  EXPECT_EQ(result.counts.writes, counts.writes);

  const StackDistanceResult distances =
      stack_distances(trace, config.line_size);
  EXPECT_EQ(result.distances.line_size, distances.line_size);
  EXPECT_EQ(result.distances.distances, distances.distances);

  const MissReport misses =
      classify_misses(trace, distances, config.miss_threshold_lines);
  EXPECT_EQ(result.misses.threshold_lines, misses.threshold_lines);
  EXPECT_EQ(result.misses.element_misses, misses.element_misses);
  ASSERT_EQ(result.misses.per_container.size(),
            misses.per_container.size());
  for (std::size_t c = 0; c < misses.per_container.size(); ++c) {
    expect_stats_equal(result.misses.per_container[c],
                       misses.per_container[c]);
  }
  expect_stats_equal(result.misses.total, misses.total);

  ASSERT_EQ(result.element_stats.size(), trace.layouts.size());
  for (std::size_t c = 0; c < trace.layouts.size(); ++c) {
    const ElementDistanceStats stats =
        element_distance_stats(trace, distances, static_cast<int>(c));
    EXPECT_EQ(result.element_stats[c].min, stats.min) << "container " << c;
    EXPECT_EQ(result.element_stats[c].median, stats.median)
        << "container " << c;
    EXPECT_EQ(result.element_stats[c].max, stats.max) << "container " << c;
    EXPECT_EQ(result.element_stats[c].cold_count, stats.cold_count)
        << "container " << c;
  }

  const CacheSimResult cache = simulate_cache(trace, *config.cache);
  ASSERT_EQ(result.cache.per_container.size(), cache.per_container.size());
  for (std::size_t c = 0; c < cache.per_container.size(); ++c) {
    expect_stats_equal(result.cache.per_container[c],
                       cache.per_container[c]);
  }
  expect_stats_equal(result.cache.total, cache.total);

  const MovementEstimate movement =
      physical_movement(trace, misses, config.line_size);
  EXPECT_EQ(result.movement.line_size, movement.line_size);
  EXPECT_EQ(result.movement.bytes_per_container,
            movement.bytes_per_container);
  EXPECT_EQ(result.movement.total_bytes, movement.total_bytes);
}

void check_workload(const ir::Sdfg& sdfg,
                    const std::vector<symbolic::SymbolMap>& bindings) {
  MetricPipeline pipeline(full_config());
  for (const symbolic::SymbolMap& binding : bindings) {
    const AccessTrace trace = simulate(sdfg, binding);
    ASSERT_GT(trace.events.size(), 0u);
    expect_matches_standalone(pipeline.run(trace), trace,
                              pipeline.config());
    expect_matches_standalone(pipeline.run(sdfg, binding), trace,
                              pipeline.config());
    expect_matches_standalone(pipeline.run_streaming(sdfg, binding), trace,
                              pipeline.config());
  }
}

TEST(Pipeline, FusedAndStreamingMatchStandalonePassesOnHdiff) {
  const ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  check_workload(sdfg, {symbolic::SymbolMap{{"I", 8}, {"J", 8}, {"K", 4}},
                        symbolic::SymbolMap{{"I", 12}, {"J", 10}, {"K", 6}},
                        symbolic::SymbolMap{{"I", 16}, {"J", 16}, {"K", 3}}});
}

TEST(Pipeline, FusedAndStreamingMatchStandalonePassesOnBert) {
  const ir::Sdfg sdfg = workloads::bert_encoder(workloads::BertStage::Fused1);
  symbolic::SymbolMap small = workloads::bert_small();
  symbolic::SymbolMap wider = small;
  wider["SM"] = 12;
  symbolic::SymbolMap taller = small;
  taller["H"] = 4;
  taller["emb"] = 16;
  check_workload(sdfg, {small, wider, taller});
}

TEST(Pipeline, StreamingNeverMaterializesTheEventVector) {
  const ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  const symbolic::SymbolMap binding{{"I", 12}, {"J", 12}, {"K", 4}};

  MetricPipeline streaming(full_config());
  const PipelineResult result = streaming.run_streaming(sdfg, binding);
  EXPECT_GT(result.events, 0);
  // O(1) event storage: the arena never allocated a single event column.
  EXPECT_EQ(streaming.event_storage_bytes(), 0u);

  MetricPipeline materialized(full_config());
  materialized.run(sdfg, binding);
  EXPECT_GT(materialized.event_storage_bytes(), 0u);
}

TEST(Pipeline, SweepMatchesIndividualRunsInBothModes) {
  const ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  const symbolic::SymbolMap base{{"I", 10}, {"J", 10}, {"K", 2}};
  const std::vector<std::int64_t> values{2, 4, 6};

  for (const bool streaming : {false, true}) {
    MetricPipeline pipeline(full_config());
    const std::vector<PipelineResult> sweep =
        pipeline.run_sweep(sdfg, base, "K", values, streaming);
    ASSERT_EQ(sweep.size(), values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      symbolic::SymbolMap binding = base;
      binding["K"] = values[i];
      const AccessTrace trace = simulate(sdfg, binding);
      expect_matches_standalone(sweep[i], trace, pipeline.config());
    }
  }
}

TEST(Pipeline, CountsOnlyConfigSkipsDistanceMachinery) {
  PipelineConfig config;
  config.counts = true;  // Everything else off.
  EXPECT_FALSE(config.needs_distances());

  const ir::Sdfg sdfg = workloads::matmul();
  const symbolic::SymbolMap binding{{"M", 6}, {"N", 6}, {"K", 6}};
  const AccessTrace trace = simulate(sdfg, binding);

  MetricPipeline pipeline(config);
  const PipelineResult result = pipeline.run(trace);
  const AccessCounts counts = count_accesses(trace);
  EXPECT_EQ(result.counts.reads, counts.reads);
  EXPECT_EQ(result.counts.writes, counts.writes);
  EXPECT_TRUE(result.distances.distances.empty());
  EXPECT_TRUE(result.misses.per_container.empty());
}

TEST(Pipeline, CacheWithDifferentLineSizeThanDistances) {
  PipelineConfig config = full_config();
  config.cache->line_size = 128;
  config.cache->total_size = 16 * 1024;

  const ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  const symbolic::SymbolMap binding{{"I", 10}, {"J", 10}, {"K", 4}};
  const AccessTrace trace = simulate(sdfg, binding);

  MetricPipeline pipeline(config);
  const PipelineResult fused = pipeline.run(trace);
  const PipelineResult streamed = pipeline.run_streaming(sdfg, binding);

  const CacheSimResult reference = simulate_cache(trace, *config.cache);
  for (const PipelineResult* result : {&fused, &streamed}) {
    ASSERT_EQ(result->cache.per_container.size(),
              reference.per_container.size());
    for (std::size_t c = 0; c < reference.per_container.size(); ++c) {
      expect_stats_equal(result->cache.per_container[c],
                         reference.per_container[c]);
    }
    expect_stats_equal(result->cache.total, reference.total);
  }
}

TEST(Pipeline, RejectsInvalidConfigs) {
  PipelineConfig movement_without_misses;
  movement_without_misses.movement = true;
  movement_without_misses.miss_threshold_lines = 0;
  EXPECT_THROW(MetricPipeline{movement_without_misses},
               std::invalid_argument);

  PipelineConfig bad_line;
  bad_line.line_size = 0;
  EXPECT_THROW(MetricPipeline{bad_line}, std::invalid_argument);

  PipelineConfig bad_cache;
  bad_cache.cache = CacheConfig{};
  bad_cache.cache->total_size = 16;  // Smaller than one line.
  EXPECT_THROW(MetricPipeline{bad_cache}, std::invalid_argument);
}

TEST(LineTable, MatchesPerEventAddressDerivation) {
  const ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  const AccessTrace trace =
      simulate(sdfg, symbolic::SymbolMap{{"I", 8}, {"J", 8}, {"K", 3}});
  const int line_size = 64;
  const LineTable table = build_line_table(trace, line_size);

  ASSERT_EQ(table.lines.size(), trace.events.size());
  ASSERT_EQ(table.per_container.size(), trace.layouts.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const AccessEvent event = trace.events[i];
    const ConcreteLayout& layout = trace.layouts[event.container];
    const std::int64_t expected =
        layout.byte_address(layout.unflatten(event.flat)) / line_size;
    ASSERT_EQ(table.lines[i], expected) << "event " << i;
    // Every observed line id sits inside its container's declared range.
    const LineTable::ContainerRange& range =
        table.per_container[event.container];
    EXPECT_GE(table.lines[i], range.first);
    EXPECT_LT(table.lines[i], range.first + range.count);
  }
}

TEST(LineTable, OverloadsMatchFreshDerivation) {
  const ir::Sdfg sdfg = workloads::matmul();
  const AccessTrace trace =
      simulate(sdfg, symbolic::SymbolMap{{"M", 8}, {"N", 8}, {"K", 8}});
  const LineTable table = build_line_table(trace, 64);

  const StackDistanceResult fresh = stack_distances(trace, 64);
  const StackDistanceResult shared = stack_distances(trace, table);
  EXPECT_EQ(fresh.distances, shared.distances);

  const CacheConfig config{};
  const CacheSimResult cache_fresh = simulate_cache(trace, config);
  const CacheSimResult cache_shared = simulate_cache(trace, config, table);
  ASSERT_EQ(cache_fresh.per_container.size(),
            cache_shared.per_container.size());
  for (std::size_t c = 0; c < cache_fresh.per_container.size(); ++c) {
    expect_stats_equal(cache_fresh.per_container[c],
                       cache_shared.per_container[c]);
  }

  for (int container = 0;
       container < static_cast<int>(trace.layouts.size()); ++container) {
    const IterationLineStats fresh_stats =
        iteration_line_stats(trace, container, 64);
    const IterationLineStats shared_stats =
        iteration_line_stats(trace, container, table);
    EXPECT_EQ(fresh_stats.executions, shared_stats.executions);
    EXPECT_DOUBLE_EQ(fresh_stats.mean_lines_per_execution,
                     shared_stats.mean_lines_per_execution);
    EXPECT_DOUBLE_EQ(fresh_stats.mean_line_utilization,
                     shared_stats.mean_line_utilization);
  }

  EXPECT_THROW(simulate_cache(trace, CacheConfig{128, 32 * 1024, 8}, table),
               std::invalid_argument);
}

TEST(Pipeline, MissReportFeedsEdgeRefinementLikeStandalonePasses) {
  // The Fig 5c per-edge overlay consumes a MissReport; the pipeline's
  // report must be a drop-in replacement for classify_misses output.
  const ir::Sdfg sdfg = workloads::matmul();
  const symbolic::SymbolMap binding = workloads::matmul_fig5();
  const AccessTrace trace = simulate(sdfg, binding);

  PipelineConfig config;
  config.miss_threshold_lines = 8;
  MetricPipeline pipeline(config);
  const PipelineResult result = pipeline.run(trace);

  const StackDistanceResult distances = stack_distances(trace, 64);
  const MissReport reference = classify_misses(trace, distances, 8);

  const ir::State& state = sdfg.states()[0];
  const std::map<std::size_t, std::int64_t> from_pipeline =
      physical_edge_bytes(state, trace, result.misses, binding, 64);
  const std::map<std::size_t, std::int64_t> from_passes =
      physical_edge_bytes(state, trace, reference, binding, 64);
  ASSERT_FALSE(from_pipeline.empty());
  EXPECT_EQ(from_pipeline, from_passes);
}

TEST(Pipeline, ArenaReuseAcrossDifferentWorkloads) {
  // One pipeline, traces of very different shapes — the arena must
  // re-dimension correctly on every run.
  MetricPipeline pipeline(full_config());
  const ir::Sdfg hdiff = workloads::hdiff(workloads::HdiffVariant::Baseline);
  const ir::Sdfg mm = workloads::matmul();

  const symbolic::SymbolMap hdiff_binding{{"I", 10}, {"J", 10}, {"K", 3}};
  const symbolic::SymbolMap mm_binding{{"M", 12}, {"N", 4}, {"K", 9}};

  const AccessTrace hdiff_trace = simulate(hdiff, hdiff_binding);
  const AccessTrace mm_trace = simulate(mm, mm_binding);

  expect_matches_standalone(pipeline.run(hdiff_trace), hdiff_trace,
                            pipeline.config());
  expect_matches_standalone(pipeline.run(mm_trace), mm_trace,
                            pipeline.config());
  expect_matches_standalone(pipeline.run_streaming(hdiff, hdiff_binding),
                            hdiff_trace, pipeline.config());
  expect_matches_standalone(pipeline.run(hdiff_trace), hdiff_trace,
                            pipeline.config());
}

}  // namespace
}  // namespace dmv::sim
