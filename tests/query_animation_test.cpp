#include <gtest/gtest.h>

#include "dmv/viz/animation.hpp"
#include "dmv/viz/query.hpp"
#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::viz {
namespace {

TEST(Search, FindsByLabelCaseInsensitive) {
  ir::Sdfg sdfg = workloads::bert_encoder(workloads::BertStage::Baseline);
  auto results = search(sdfg, "SOFTMAX");
  EXPECT_TRUE(results.empty());
  results = search(sdfg, "RowMax");
  ASSERT_FALSE(results.empty());
  for (const SearchResult& result : results) {
    EXPECT_NE(result.label.find("rowmax"), std::string::npos);
  }
}

TEST(Search, FindsContainersAndParams) {
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  // Container name matches access nodes.
  auto by_data = search(sdfg, "in_field");
  bool found_access = false;
  for (const SearchResult& result : by_data) {
    if (result.kind == ir::NodeKind::Access) found_access = true;
  }
  EXPECT_TRUE(found_access);
  // Tasklet code matches.
  EXPECT_FALSE(search(sdfg, "lap_c").empty());
  // Empty query returns nothing.
  EXPECT_TRUE(search(sdfg, "").empty());
  EXPECT_TRUE(search(sdfg, "nonexistent-zzz").empty());
}

TEST(DetailsPanel, AccessNodeShowsLayoutFacts) {
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Padded);
  const ir::State& state = sdfg.states()[0];
  ir::NodeId access = ir::kNoNode;
  for (const ir::Node& node : state.nodes()) {
    if (node.kind == ir::NodeKind::Access && node.data == "in_field") {
      access = node.id;
    }
  }
  ASSERT_NE(access, ir::kNoNode);
  std::string text = details_panel(sdfg, 0, access);
  EXPECT_NE(text.find("shape"), std::string::npos);
  EXPECT_NE(text.find("strides"), std::string::npos);
  EXPECT_NE(text.find("element size: 8"), std::string::npos);
  // The padded stride is visible — the §V-D "opaque" info, on demand.
  EXPECT_NE(text.find("ceil_div"), std::string::npos);
}

TEST(DetailsPanel, TaskletShowsOpCounts) {
  ir::Sdfg sdfg = workloads::matmul();
  const ir::State& state = sdfg.states()[0];
  ir::NodeId tasklet = ir::kNoNode;
  for (const ir::Node& node : state.nodes()) {
    if (node.kind == ir::NodeKind::Tasklet) tasklet = node.id;
  }
  std::string text = details_panel(sdfg, 0, tasklet);
  EXPECT_NE(text.find("c = a * b"), std::string::npos);
  EXPECT_NE(text.find("1 mul"), std::string::npos);
}

TEST(DetailsPanel, MapShowsBoundsAndIterations) {
  ir::Sdfg sdfg = workloads::matmul();
  const ir::State& state = sdfg.states()[0];
  ir::NodeId entry = ir::kNoNode;
  for (const ir::Node& node : state.nodes()) {
    if (node.kind == ir::NodeKind::MapEntry) entry = node.id;
  }
  std::string text = details_panel(sdfg, 0, entry);
  EXPECT_NE(text.find("i in [0:M - 1]"), std::string::npos);
  EXPECT_NE(text.find("iterations: K*M*N"), std::string::npos);
  // The exit shows its entry's details.
  EXPECT_EQ(details_panel(sdfg, 0, state.node(entry).paired), text);
}

TEST(Filtering, HiddenKindsDisappearFromSvg) {
  ir::Sdfg sdfg = workloads::outer_product();
  GraphRenderOptions plain;
  GraphRenderOptions filtered;
  filtered.hidden_kinds = {ir::NodeKind::Access};
  std::string with = render_state_svg(sdfg.states()[0], plain);
  std::string without = render_state_svg(sdfg.states()[0], filtered);
  EXPECT_NE(with.find("<ellipse"), std::string::npos);
  EXPECT_EQ(without.find("<ellipse"), std::string::npos);
  EXPECT_LT(without.size(), with.size());
}

TEST(AutoCollapse, FoldsUntilLegible) {
  ir::Sdfg sdfg = workloads::bert_encoder(workloads::BertStage::Baseline);
  const std::size_t full = sdfg.states()[0].num_nodes();
  const int collapsed = auto_collapse(sdfg, 80);
  EXPECT_GT(collapsed, 0);
  StateLayout layout = layout_state(sdfg.states()[0]);
  EXPECT_LE(layout.nodes.size(), 80u);
  EXPECT_LT(layout.nodes.size(), full);
  // Idempotent once legible.
  EXPECT_EQ(auto_collapse(sdfg, 80), 0);
}

TEST(AutoCollapse, NoOpOnSmallGraphs) {
  ir::Sdfg sdfg = workloads::outer_product();
  EXPECT_EQ(auto_collapse(sdfg, 100), 0);
}

TEST(Animation, PerExecutionFrames) {
  ir::Sdfg sdfg = workloads::outer_product();
  sim::AccessTrace trace =
      sim::simulate(sdfg, workloads::outer_product_fig3());
  std::vector<AnimationFrame> frames = animation_frames(trace);
  ASSERT_EQ(frames.size(), 12u);  // One per (i, j).
  // Frame 0 = iteration (0,0): A[0], B[0], C[0,0].
  const int a = trace.container_id("A");
  const int c = trace.container_id("C");
  EXPECT_TRUE(frames[0].highlighted.at(a).contains(0));
  EXPECT_TRUE(frames[0].highlighted.at(c).contains(0));
  // Last frame = (2,3): C flat 11.
  EXPECT_TRUE(frames.back().highlighted.at(c).contains(11));
}

TEST(Animation, MaxFramesAndTimestepGranularity) {
  ir::Sdfg sdfg = workloads::outer_product();
  sim::AccessTrace trace =
      sim::simulate(sdfg, workloads::outer_product_fig3());
  AnimationOptions options;
  options.granularity = FrameGranularity::PerTimestep;
  options.max_frames = 5;
  std::vector<AnimationFrame> frames = animation_frames(trace, options);
  ASSERT_EQ(frames.size(), 5u);
  for (const AnimationFrame& frame : frames) {
    std::size_t total = 0;
    for (const auto& [container, elements] : frame.highlighted) {
      total += elements.size();
    }
    EXPECT_EQ(total, 1u);  // One event per timestep frame.
  }
}

TEST(Animation, SmilSvgIsWellFormed) {
  ir::Sdfg sdfg = workloads::outer_product();
  sim::AccessTrace trace =
      sim::simulate(sdfg, workloads::outer_product_fig3());
  std::vector<AnimationFrame> frames = animation_frames(trace);
  const int a = trace.container_id("A");
  std::string svg = render_animated_tiles_svg(trace, a, frames);
  EXPECT_NE(svg.find("<animate"), std::string::npos);
  EXPECT_NE(svg.find("repeatCount=\"indefinite\""), std::string::npos);
  EXPECT_NE(svg.find("calcMode=\"discrete\""), std::string::npos);
  // No placeholder coordinates left behind.
  EXPECT_EQ(svg.find("REPLACE_"), std::string::npos);
  // Every A element (3) gets an overlay track (each is accessed).
  std::size_t tracks = 0, pos = 0;
  while ((pos = svg.find("data-flat=", pos)) != std::string::npos) {
    ++tracks;
    pos += 10;
  }
  EXPECT_EQ(tracks, 3u);
}

TEST(Animation, ArgumentChecks) {
  ir::Sdfg sdfg = workloads::outer_product();
  sim::AccessTrace trace =
      sim::simulate(sdfg, workloads::outer_product_fig3());
  std::vector<AnimationFrame> frames = animation_frames(trace);
  EXPECT_THROW(render_animated_tiles_svg(trace, 99, frames),
               std::out_of_range);
  EXPECT_THROW(render_animated_tiles_svg(trace, 0, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dmv::viz
