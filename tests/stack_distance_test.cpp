#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "dmv/builder/program_builder.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::sim {
namespace {

using builder::ProgramBuilder;

// Builds a synthetic trace over one 1-D container from a flat index
// sequence, so distance algorithms can be tested on known streams.
AccessTrace synthetic_trace(std::int64_t elements,
                            const std::vector<std::int64_t>& sequence,
                            int element_size = 8) {
  AccessTrace trace;
  ConcreteLayout layout;
  layout.name = "A";
  layout.shape = {elements};
  layout.strides = {1};
  layout.element_size = element_size;
  trace.containers = {"A"};
  trace.layouts = {layout};
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    AccessEvent event;
    event.container = 0;
    event.flat = sequence[i];
    event.timestep = static_cast<std::int64_t>(i);
    event.execution = static_cast<std::int64_t>(i);
    trace.events.push_back(event);
  }
  trace.executions = static_cast<std::int64_t>(sequence.size());
  return trace;
}

TEST(StackDistance, FirstAccessIsCold) {
  AccessTrace trace = synthetic_trace(8, {0, 1, 2});
  // Element size 8, line 8: each element its own line.
  StackDistanceResult result = stack_distances(trace, 8);
  for (std::int64_t d : result.distances) {
    EXPECT_EQ(d, kInfiniteDistance);
  }
}

TEST(StackDistance, ImmediateReuseIsZero) {
  AccessTrace trace = synthetic_trace(8, {3, 3, 3});
  StackDistanceResult result = stack_distances(trace, 8);
  EXPECT_EQ(result.distances[1], 0);
  EXPECT_EQ(result.distances[2], 0);
}

TEST(StackDistance, ClassicSequence) {
  // Stream a b c a: the re-access to a has seen 2 distinct lines since.
  AccessTrace trace = synthetic_trace(8, {0, 1, 2, 0});
  StackDistanceResult result = stack_distances(trace, 8);
  EXPECT_EQ(result.distances[3], 2);
}

TEST(StackDistance, RepeatsDoNotInflateDistance) {
  // a b b b a: only ONE distinct line between the two a's.
  AccessTrace trace = synthetic_trace(8, {0, 1, 1, 1, 0});
  StackDistanceResult result = stack_distances(trace, 8);
  EXPECT_EQ(result.distances[4], 1);
}

TEST(StackDistance, LineGranularitySharing) {
  // 8-byte elements, 64-byte lines: elements 0..7 share line 0. An
  // access to element 1 right after element 0 is a line re-reference
  // with distance 0 (the §V-E cache-line granularity rule).
  AccessTrace trace = synthetic_trace(16, {0, 1, 8, 0});
  StackDistanceResult result = stack_distances(trace, 64);
  EXPECT_EQ(result.distances[0], kInfiniteDistance);
  EXPECT_EQ(result.distances[1], 0);
  EXPECT_EQ(result.distances[2], kInfiniteDistance);
  EXPECT_EQ(result.distances[3], 1);
}

TEST(StackDistance, NaiveMatchesFenwickOnRandomStreams) {
  std::mt19937 rng(42);
  for (int round = 0; round < 10; ++round) {
    std::uniform_int_distribution<std::int64_t> element(0, 40);
    std::vector<std::int64_t> sequence(300);
    for (auto& s : sequence) s = element(rng);
    AccessTrace trace = synthetic_trace(48, sequence);
    for (int line : {8, 16, 64}) {
      StackDistanceResult fast = stack_distances(trace, line);
      StackDistanceResult naive = stack_distances_naive(trace, line);
      EXPECT_EQ(fast.distances, naive.distances)
          << "round " << round << " line " << line;
    }
  }
}

TEST(StackDistance, NaiveMatchesFenwickOnRealWorkload) {
  ir::Sdfg sdfg = workloads::matmul();
  AccessTrace trace = simulate(sdfg, workloads::matmul_fig5());
  for (int line : {32, 64}) {
    EXPECT_EQ(stack_distances(trace, line).distances,
              stack_distances_naive(trace, line).distances);
  }
}

TEST(ElementStats, MinMedianMaxAndCold) {
  // Element 0: accesses at distances inf, 0, 2.
  AccessTrace trace = synthetic_trace(8, {0, 0, 1, 2, 0});
  StackDistanceResult result = stack_distances(trace, 8);
  ElementDistanceStats stats = element_distance_stats(trace, result, 0);
  EXPECT_EQ(stats.cold_count[0], 1);
  EXPECT_EQ(stats.min[0], 0);
  EXPECT_EQ(stats.max[0], 2);
  EXPECT_EQ(stats.median[0], 2);  // Upper median of {0, 2}.
  // Element 3 never accessed: all stats stay infinite, no cold count.
  EXPECT_EQ(stats.cold_count[3], 0);
  EXPECT_EQ(stats.min[3], kInfiniteDistance);
}

TEST(ElementStats, MatmulFig5bColdMissAccounting) {
  // Fig 5b detail: the per-element histogram lists cold misses. Every
  // cache line of A is first touched through exactly one of its
  // elements, so the number of elements reporting one cold miss equals
  // the number of lines A spans, and a line-leading element (A[3,2] at
  // 32-byte lines with 4-byte values) lists exactly one.
  ir::Sdfg sdfg = workloads::matmul();
  AccessTrace trace = simulate(sdfg, workloads::matmul_fig5());
  StackDistanceResult result = stack_distances(trace, 32);
  const int a = trace.container_id("A");
  ElementDistanceStats stats = element_distance_stats(trace, result, a);

  std::int64_t cold_elements = 0;
  for (std::int64_t cold : stats.cold_count) {
    EXPECT_LE(cold, 1);  // A line can only be first-touched once.
    cold_elements += cold;
  }
  EXPECT_EQ(cold_elements, layout::lines_spanned(trace.layouts[a], 32));

  const std::int64_t line_leader =
      trace.layouts[a].flat_index(std::vector<std::int64_t>{3, 2});
  DistanceHistogram histogram =
      distance_histogram(trace, result, a, line_leader);
  EXPECT_EQ(histogram.cold_misses, 1);
  EXPECT_FALSE(histogram.distances.empty());
}

TEST(Histogram, ContainerWideAggregation) {
  AccessTrace trace = synthetic_trace(8, {0, 1, 0, 1, 2});
  StackDistanceResult result = stack_distances(trace, 8);
  DistanceHistogram histogram = distance_histogram(trace, result, 0);
  EXPECT_EQ(histogram.cold_misses, 3);
  EXPECT_EQ(histogram.distances.size(), 2u);
  EXPECT_TRUE(std::is_sorted(histogram.distances.begin(),
                             histogram.distances.end()));
}

TEST(StackDistance, PaddingChangesLineMapping) {
  // With padded strides the same logical accesses hit different lines:
  // two row-adjacent elements share a line unpadded but not padded.
  ProgramBuilder p("prog");
  p.symbols({"R", "C"});
  p.array("A", {"R", "C"});
  p.array("B", {"R", "C"});
  p.state("s");
  p.mapped_tasklet("id", {{"r", "0:R-1"}, {"c", "0:C-1"}},
                   {{"v", "A", "r, c"}}, "o = v", {{"o", "B", "r, c"}});
  ir::Sdfg sdfg = p.take();
  symbolic::SymbolMap env{{"R", 4}, {"C", 12}};

  AccessTrace unpadded = simulate(sdfg, env);
  sdfg.array("A").strides = {symbolic::Expr(16), symbolic::Expr(1)};
  AccessTrace padded = simulate(sdfg, env);

  const int a = unpadded.container_id("A");
  auto lines = [&](const AccessTrace& trace) {
    std::set<std::int64_t> distinct;
    for (const AccessEvent& event : trace.events) {
      if (event.container != a) continue;
      const ConcreteLayout& layout = trace.layouts[a];
      distinct.insert(layout.byte_address(layout.unflatten(event.flat)) /
                      64);
    }
    return distinct.size();
  };
  EXPECT_LT(lines(unpadded), lines(padded));
}

TEST(Histogram, PerElementHistogramsPartitionContainerHistogram) {
  // The details panel can show one histogram for a whole container or
  // one per clicked element; the per-element views must partition the
  // container view exactly: cold misses sum up, and the per-element
  // finite distances, pooled, are the container's distance multiset.
  ir::Sdfg sdfg = workloads::matmul();
  AccessTrace trace = simulate(sdfg, workloads::matmul_fig5());
  StackDistanceResult result = stack_distances(trace, 32);
  const int a = trace.container_id("A");

  const DistanceHistogram container_wide =
      distance_histogram(trace, result, a);
  const ElementDistanceStats stats = element_distance_stats(trace, result, a);

  std::int64_t cold_sum = 0;
  std::vector<std::int64_t> pooled;
  const std::int64_t elements = trace.layouts[a].total_elements();
  for (std::int64_t flat = 0; flat < elements; ++flat) {
    const DistanceHistogram per_element =
        distance_histogram(trace, result, a, flat);
    cold_sum += per_element.cold_misses;
    pooled.insert(pooled.end(), per_element.distances.begin(),
                  per_element.distances.end());
    // Cross-check against the per-element stats pass.
    EXPECT_EQ(per_element.cold_misses,
              stats.cold_count[static_cast<std::size_t>(flat)]);
    if (!per_element.distances.empty()) {
      EXPECT_EQ(per_element.distances.front(),
                stats.min[static_cast<std::size_t>(flat)]);
      EXPECT_EQ(per_element.distances.back(),
                stats.max[static_cast<std::size_t>(flat)]);
    }
  }
  EXPECT_EQ(cold_sum, container_wide.cold_misses);
  std::sort(pooled.begin(), pooled.end());
  EXPECT_EQ(pooled, container_wide.distances);
}

}  // namespace
}  // namespace dmv::sim
