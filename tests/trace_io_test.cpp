#include "dmv/sim/trace_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "dmv/workloads/workloads.hpp"

namespace dmv::sim {
namespace {

TEST(TraceIo, RoundTripPreservesEverything) {
  ir::Sdfg sdfg = workloads::matmul();
  AccessTrace original = simulate(sdfg, workloads::matmul_fig5());
  AccessTrace restored = trace_from_string(trace_to_string(original));

  ASSERT_EQ(restored.containers, original.containers);
  ASSERT_EQ(restored.layouts.size(), original.layouts.size());
  for (std::size_t c = 0; c < original.layouts.size(); ++c) {
    EXPECT_EQ(restored.layouts[c].shape, original.layouts[c].shape);
    EXPECT_EQ(restored.layouts[c].strides, original.layouts[c].strides);
    EXPECT_EQ(restored.layouts[c].element_size,
              original.layouts[c].element_size);
    EXPECT_EQ(restored.layouts[c].base_address,
              original.layouts[c].base_address);
  }
  ASSERT_EQ(restored.events.size(), original.events.size());
  for (std::size_t i = 0; i < original.events.size(); ++i) {
    EXPECT_EQ(restored.events[i].container, original.events[i].container);
    EXPECT_EQ(restored.events[i].flat, original.events[i].flat);
    EXPECT_EQ(restored.events[i].is_write, original.events[i].is_write);
    EXPECT_EQ(restored.events[i].execution, original.events[i].execution);
  }
}

TEST(TraceIo, AnalysesAgreeOnRestoredTrace) {
  // The whole point of the import path (§VIII-d): an external trace runs
  // through the same analyses with identical results.
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  AccessTrace original = simulate(sdfg, workloads::hdiff_local());
  AccessTrace restored = trace_from_string(trace_to_string(original));

  EXPECT_EQ(stack_distances(original, 64).distances,
            stack_distances(restored, 64).distances);
  StackDistanceResult distances = stack_distances(restored, 64);
  EXPECT_EQ(classify_misses(original, stack_distances(original, 64), 8)
                .total.misses(),
            classify_misses(restored, distances, 8).total.misses());
}

TEST(TraceIo, HandWrittenExternalTrace) {
  // The format an instrumentation tool would emit directly.
  const char* text =
      "dmvtrace 1\n"
      "container buffer 4 0 4 4 ; 4 1\n"
      "events\n"
      "0 0 0 r 0 -1\n"
      "1 0 5 w 0 -1\n"
      "2 0 0 r 1 -1\n";
  AccessTrace trace = trace_from_string(text);
  ASSERT_EQ(trace.containers.size(), 1u);
  EXPECT_EQ(trace.layouts[0].shape, (std::vector<std::int64_t>{4, 4}));
  ASSERT_EQ(trace.events.size(), 3u);
  EXPECT_TRUE(trace.events[1].is_write);
  EXPECT_EQ(trace.executions, 2);
  AccessCounts counts = count_accesses(trace);
  EXPECT_EQ(counts.reads[0][0], 2);
  EXPECT_EQ(counts.writes[0][5], 1);
}

TEST(TraceIo, HostileContainerNamesRoundTrip) {
  // Names with whitespace or backslashes must survive the
  // space-delimited header via escaping (`\s`, `\t`, `\n`, `\r`, `\\`,
  // `\e` for the empty name).
  AccessTrace original;
  const std::vector<std::string> names = {
      "plain",        "two words",   "tab\there",   "new\nline",
      "carriage\rret", "back\\slash", "",            " lead and trail ",
      "mix \\ \t all\n"};
  for (std::size_t c = 0; c < names.size(); ++c) {
    ConcreteLayout layout;
    layout.name = names[c];
    layout.element_size = 8;
    layout.base_address = static_cast<std::int64_t>(c) * 1024;
    layout.shape = {4};
    layout.strides = {1};
    original.containers.push_back(layout.name);
    original.layouts.push_back(std::move(layout));
    AccessEvent event;
    event.container = static_cast<std::int32_t>(c);
    event.flat = static_cast<std::int64_t>(c % 4);
    event.is_write = c % 2 == 0;
    event.timestep = static_cast<std::int64_t>(c);
    event.execution = 0;
    original.events.push_back(event);
  }
  original.executions = 1;

  const std::string text = trace_to_string(original);
  // Header lines must stay single-line: escaping removed raw newlines.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            1 + names.size() + 1 + original.events.size());

  AccessTrace restored = trace_from_string(text);
  EXPECT_EQ(restored.containers, original.containers);
  ASSERT_EQ(restored.layouts.size(), original.layouts.size());
  for (std::size_t c = 0; c < original.layouts.size(); ++c) {
    EXPECT_EQ(restored.layouts[c].name, original.layouts[c].name);
  }
  ASSERT_EQ(restored.events.size(), original.events.size());
}

TEST(TraceIo, SimpleNamesStayUnescaped) {
  // Pre-escaping writers/readers only ever used bare tokens; names that
  // need no escaping must be emitted verbatim for compatibility.
  AccessTrace trace;
  ConcreteLayout layout;
  layout.name = "buffer";
  layout.element_size = 4;
  layout.base_address = 0;
  layout.shape = {2};
  layout.strides = {1};
  trace.containers.push_back(layout.name);
  trace.layouts.push_back(std::move(layout));
  trace.executions = 0;
  const std::string text = trace_to_string(trace);
  EXPECT_NE(text.find("container buffer 4 0 2 ; 1\n"), std::string::npos)
      << text;
}

TEST(TraceIo, RejectsBadNameEscapes) {
  // Unknown escape.
  EXPECT_THROW(trace_from_string("dmvtrace 1\n"
                                 "container a\\qb 8 0 4 ; 1\n"
                                 "events\n"),
               std::runtime_error);
  // Dangling escape at end of token.
  EXPECT_THROW(trace_from_string("dmvtrace 1\n"
                                 "container a\\ 8 0 4 ; 1\n"
                                 "events\n"),
               std::runtime_error);
  // `\e` only stands alone.
  EXPECT_THROW(trace_from_string("dmvtrace 1\n"
                                 "container a\\eb 8 0 4 ; 1\n"
                                 "events\n"),
               std::runtime_error);
}

TEST(TraceIo, RejectsMalformedInput) {
  EXPECT_THROW(trace_from_string(""), std::runtime_error);
  EXPECT_THROW(trace_from_string("wrong magic\n"), std::runtime_error);
  EXPECT_THROW(trace_from_string("dmvtrace 1\nnonsense\n"),
               std::runtime_error);
  // Missing events section.
  EXPECT_THROW(
      trace_from_string("dmvtrace 1\ncontainer a 8 0 4 ; 1\n"),
      std::runtime_error);
  // Event referencing an unknown container.
  EXPECT_THROW(trace_from_string("dmvtrace 1\n"
                                 "container a 8 0 4 ; 1\n"
                                 "events\n"
                                 "0 3 0 r 0 -1\n"),
               std::runtime_error);
  // Element out of range.
  EXPECT_THROW(trace_from_string("dmvtrace 1\n"
                                 "container a 8 0 4 ; 1\n"
                                 "events\n"
                                 "0 0 9 r 0 -1\n"),
               std::runtime_error);
  // Bad access mode.
  EXPECT_THROW(trace_from_string("dmvtrace 1\n"
                                 "container a 8 0 4 ; 1\n"
                                 "events\n"
                                 "0 0 1 x 0 -1\n"),
               std::runtime_error);
  // Shape/stride rank mismatch.
  EXPECT_THROW(trace_from_string("dmvtrace 1\n"
                                 "container a 8 0 4 4 ; 1\n"
                                 "events\n"),
               std::runtime_error);
}

TEST(TraceIo, ErrorsCarryLineNumbers) {
  try {
    trace_from_string("dmvtrace 1\ncontainer a 8 0 4 ; 1\nevents\nbroken\n");
    FAIL() << "expected failure";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line 4"), std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace dmv::sim
