#!/usr/bin/env python3
"""Fail on broken relative links in the repo's markdown documentation.

Checks every inline markdown link ``[text](target)`` in README.md,
DESIGN.md, and docs/**/*.md. External links (http/https/mailto) are
skipped; everything else is resolved relative to the file containing
the link (or the repo root for ``/``-prefixed targets) and must exist.
Fragments (``file.md#section``) are checked for file existence only.

Run from anywhere:  python3 tools/check_docs_links.py
Exit code 0 when every link resolves, 1 otherwise (broken links are
listed on stderr). CI runs this as the docs job.
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline links, skipping images' leading "!" handled by the same regex.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:")


def doc_files():
    files = [REPO_ROOT / "README.md", REPO_ROOT / "DESIGN.md"]
    files.extend(sorted((REPO_ROOT / "docs").rglob("*.md")))
    return [f for f in files if f.is_file()]


def check_file(path: Path):
    broken = []
    text = path.read_text(encoding="utf-8")
    # Strip fenced code blocks: snippets often contain [..](..)-shaped
    # text that is not a link.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        if target.startswith("/"):
            resolved = REPO_ROOT / target.lstrip("/")
        else:
            resolved = path.parent / target
        if not resolved.exists():
            broken.append((target, match.group(0)))
    return broken


def main() -> int:
    any_broken = False
    checked = 0
    for path in doc_files():
        checked += 1
        for target, link in check_file(path):
            any_broken = True
            rel = path.relative_to(REPO_ROOT)
            print(f"{rel}: broken link {link} -> {target}", file=sys.stderr)
    if any_broken:
        return 1
    print(f"checked {checked} markdown files, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
