#!/usr/bin/env python3
"""Fail on broken links, anchors, or stale identifiers in the docs.

Checks every inline markdown link ``[text](target)`` in README.md,
DESIGN.md, and docs/**/*.md. External links (http/https/mailto) are
skipped; everything else is resolved relative to the file containing
the link (or the repo root for ``/``-prefixed targets) and must exist.

Fragments are validated against real headings: ``#section`` must match
a GitHub-style heading slug in the same file, and ``file.md#section``
must match one in the target markdown file.

C++ code fences in the docs are also checked at grep level: every
qualified identifier (``dmv::serve::Server``, ``Kind::kMetrics``) must
have all of its segments present somewhere in ``src/include/`` — this
flags snippets that still reference renamed or deleted API.
Identifiers rooted in ``std`` (and other toolchain namespaces) are
exempt, as are fences not tagged ``cpp``/``c++``.

Run from anywhere:  python3 tools/check_docs_links.py
Exit code 0 when everything resolves, 1 otherwise (problems are listed
on stderr). CI runs this as the docs job.
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline links, skipping images' leading "!" handled by the same regex.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:")

FENCE_RE = re.compile(r"```(\w*)[^\n]*\n(.*?)```", re.DOTALL)
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)
QUALIFIED_RE = re.compile(r"\b[A-Za-z_]\w*(?:::[A-Za-z_~]\w*)+")

# Namespaces whose members are not expected in src/include/.
FOREIGN_ROOTS = {"std", "testing", "benchmark", "chrono"}


def doc_files():
    files = [REPO_ROOT / "README.md", REPO_ROOT / "DESIGN.md"]
    files.extend(sorted((REPO_ROOT / "docs").rglob("*.md")))
    return [f for f in files if f.is_file()]


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor transform (ASCII-level)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = re.sub(r"[*_]{1,2}([^*_]+)[*_]{1,2}", r"\1", text)  # emphasis
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(markdown: str) -> set:
    """All anchor slugs a markdown document exposes, with GitHub's
    ``-1``/``-2`` dedup suffixes for repeated headings."""
    without_fences = FENCE_RE.sub("", markdown)
    anchors = set()
    counts = {}
    for match in HEADING_RE.finditer(without_fences):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def header_identifiers() -> set:
    """Every identifier token appearing in src/include/ headers."""
    tokens = set()
    for header in (REPO_ROOT / "src" / "include").rglob("*.hpp"):
        tokens.update(
            re.findall(r"[A-Za-z_]\w*", header.read_text(encoding="utf-8"))
        )
    return tokens


class DocChecker:
    def __init__(self):
        self.known_tokens = header_identifiers()
        self.anchor_cache = {}
        self.problems = []

    def anchors_of(self, path: Path) -> set:
        if path not in self.anchor_cache:
            self.anchor_cache[path] = heading_anchors(
                path.read_text(encoding="utf-8")
            )
        return self.anchor_cache[path]

    def report(self, path: Path, message: str):
        self.problems.append(f"{path.relative_to(REPO_ROOT)}: {message}")

    def check_links(self, path: Path, text: str):
        prose = FENCE_RE.sub("", text)
        for match in LINK_RE.finditer(prose):
            target = match.group(1)
            if target.startswith(EXTERNAL):
                continue
            if target.startswith("#"):
                fragment = target[1:]
                if fragment not in self.anchors_of(path):
                    self.report(
                        path,
                        f"broken anchor {match.group(0)} -> no heading "
                        f"slug '#{fragment}' in this file",
                    )
                continue
            target, _, fragment = target.partition("#")
            if not target:
                continue
            if target.startswith("/"):
                resolved = REPO_ROOT / target.lstrip("/")
            else:
                resolved = path.parent / target
            if not resolved.exists():
                self.report(
                    path, f"broken link {match.group(0)} -> {target}"
                )
                continue
            if fragment and resolved.suffix == ".md" and resolved.is_file():
                if fragment not in self.anchors_of(resolved.resolve()):
                    self.report(
                        path,
                        f"broken anchor {match.group(0)} -> no heading "
                        f"slug '#{fragment}' in {target}",
                    )

    def check_code_fences(self, path: Path, text: str):
        for match in FENCE_RE.finditer(text):
            language, code = match.group(1).lower(), match.group(2)
            if language not in ("cpp", "c++", "cxx"):
                continue
            line_base = text.count("\n", 0, match.start()) + 2
            for qualified in sorted(set(QUALIFIED_RE.findall(code))):
                segments = qualified.replace("~", "").split("::")
                if segments[0] in FOREIGN_ROOTS:
                    continue
                missing = [
                    s for s in segments if s not in self.known_tokens
                ]
                if missing:
                    line = line_base + code[: code.find(qualified)].count(
                        "\n"
                    )
                    self.report(
                        path,
                        f"line {line}: code fence references "
                        f"'{qualified}' but "
                        f"'{missing[0]}' does not appear anywhere in "
                        f"src/include/ (renamed or removed API?)",
                    )

    def run(self) -> int:
        checked = 0
        for path in doc_files():
            checked += 1
            text = path.read_text(encoding="utf-8")
            self.check_links(path, text)
            self.check_code_fences(path, text)
        if self.problems:
            for problem in self.problems:
                print(problem, file=sys.stderr)
            return 1
        print(
            f"checked {checked} markdown files: links, anchors, and "
            f"C++ fence identifiers all resolve"
        )
        return 0


def main() -> int:
    return DocChecker().run()


if __name__ == "__main__":
    sys.exit(main())
