#!/usr/bin/env python3
"""Scripted smoke client for dmv_serve (stdio transport).

Drives the documented protocol end to end — open hdiff, drag the K
slider, re-drag the same values, check stats, shut down — and exits
nonzero on any protocol error, checksum instability, or unexpected
server exit code. CI runs this against a freshly built binary
(docs/serving.md describes the protocol being exercised).

The persistence flags turn it into the restart gate: run once with
--cache-dir and --checksum-file to populate a warm-start directory and
record the step checksums, then run again with --expect-disk-warm to
assert the second server serves the same checksums from disk without
re-simulating (docs/storage.md covers the cache-dir lifecycle).

Usage: serve_smoke.py [path/to/dmv_serve] [--cache-dir DIR]
                      [--checksum-file PATH] [--expect-disk-warm]
"""

import argparse
import json
import subprocess
import sys

DRAG = [6, 7, 8, 9, 8, 7]


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


class Client:
    def __init__(self, argv):
        self.proc = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
        )
        self.next_id = 0

    def call(self, method, **params):
        self.next_id += 1
        request = {"id": self.next_id, "method": method, "params": params}
        self.proc.stdin.write(json.dumps(request) + "\n")
        self.proc.stdin.flush()
        line = self.proc.stdout.readline()
        if not line:
            fail(f"server closed stdout while handling {method}")
        try:
            response = json.loads(line)
        except json.JSONDecodeError as error:
            fail(f"unparseable response line {line!r}: {error}")
        if response.get("id") != self.next_id:
            fail(f"response id {response.get('id')} != request id {self.next_id}")
        if "error" in response:
            fail(f"{method} -> error {response['error']}")
        if "result" not in response:
            fail(f"{method} -> response without result: {response}")
        return response["result"]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary", nargs="?", default="build/src/dmv_serve")
    parser.add_argument(
        "--cache-dir",
        help="pass through to dmv_serve --cache-dir (persistent warm-start tier)",
    )
    parser.add_argument(
        "--checksum-file",
        help="record step checksums here, or compare against a prior recording",
    )
    parser.add_argument(
        "--expect-disk-warm",
        action="store_true",
        help="require the cold drag to be served from the disk tier "
        "(a restarted server re-serving a prior run's artifacts)",
    )
    args = parser.parse_args()

    argv = [args.binary]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    client = Client(argv)

    opened = client.call(
        "open_program",
        session="smoke",
        workload="hdiff",
        binding={"I": 8, "J": 8, "K": 5},
    )
    if opened.get("program") != "hdiff":
        fail(f"open_program echoed program {opened.get('program')!r}")
    if sorted(opened.get("symbols", [])) != ["I", "J", "K"]:
        fail(f"unexpected symbols {opened.get('symbols')}")

    first = []
    for value in DRAG:
        result = client.call("step", session="smoke", symbol="K", value=value)
        for field in ("checksum", "executions", "served_by", "movement_bytes"):
            if field not in result:
                fail(f"step response missing {field}: {result}")
        if args.expect_disk_warm and result["served_by"] == "compute":
            fail(
                f"first visit of K={value} was computed, not served from "
                f"the warm cache dir (served_by={result['served_by']!r})"
            )
        first.append(result["checksum"])

    # Re-dragging the same values must return bit-identical checksums,
    # all served from cache (the memoization contract over the wire).
    for value, expected in zip(DRAG, first):
        result = client.call("step", session="smoke", symbol="K", value=value)
        if result["checksum"] != expected:
            fail(
                f"checksum changed on revisit of K={value}: "
                f"{result['checksum']} != {expected}"
            )
        if result["served_by"] == "compute":
            fail(f"revisit of K={value} recomputed instead of hitting cache")

    stats = client.call("stats", session="smoke")
    session = stats.get("session", {})
    if session.get("hits", 0) <= 0:
        fail(f"no cache hits after revisits: {session}")
    if stats.get("server", {}).get("errors", 1) != 0:
        fail(f"server counted errors during smoke: {stats.get('server')}")
    disk_hits = stats.get("shared_cache", {}).get("disk_hits", 0)
    if args.expect_disk_warm and disk_hits <= 0:
        fail(
            f"--expect-disk-warm but shared_cache.disk_hits == {disk_hits}: "
            f"the server re-simulated instead of warm-starting from "
            f"{args.cache_dir}"
        )

    stopping = client.call("shutdown")
    if stopping.get("stopping") is not True:
        fail(f"shutdown did not acknowledge: {stopping}")
    client.proc.stdin.close()
    code = client.proc.wait(timeout=30)
    if code != 0:
        fail(f"dmv_serve exited with code {code}")

    # Cross-run checksum comparison: the disk-warm run must serve bytes
    # bit-identical to the run that populated the cache directory.
    if args.checksum_file:
        if args.expect_disk_warm:
            with open(args.checksum_file) as handle:
                recorded = json.load(handle)
            if recorded != first:
                fail(
                    f"disk-warm checksums diverge from the recording in "
                    f"{args.checksum_file}: {first} != {recorded}"
                )
        else:
            with open(args.checksum_file, "w") as handle:
                json.dump(first, handle)

    mode = "disk-warm" if args.expect_disk_warm else "cold"
    print(
        f"serve_smoke: OK ({len(DRAG)} {mode} + {len(DRAG)} warm steps, "
        f"{session.get('hits')} hits, {disk_hits} disk hits, clean shutdown)"
    )


if __name__ == "__main__":
    main()
