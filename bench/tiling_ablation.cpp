// Ablation: loop tiling, the optimization the paper's related-access
// view motivates (§V-C "helps analyze for potential replication or loop
// tiling opportunities"). Sweeps tile sizes on matmul and reports the
// predicted misses and physical movement the local view would show for
// each choice — turning the tool's workflow into a tuning-knob study.

#include <cstdio>

#include "dmv/sim/sim.hpp"
#include "dmv/transforms/transforms.hpp"
#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

namespace sim = dmv::sim;

dmv::ir::NodeId find_map(const dmv::ir::State& state) {
  for (const dmv::ir::Node& node : state.nodes()) {
    if (node.kind == dmv::ir::NodeKind::MapEntry) return node.id;
  }
  return dmv::ir::kNoNode;
}

}  // namespace

int main() {
  const dmv::symbolic::SymbolMap params{{"M", 24}, {"K", 24}, {"N", 24}};
  const int line_size = 64;
  const std::int64_t threshold = 16;

  std::printf(
      "Tiling ablation: matmul 24x24x24, %d B lines, %lld-line cache "
      "model.\n\n",
      line_size, static_cast<long long>(threshold));
  dmv::viz::TextTable table({"variant", "misses", "est. bytes",
                             "B-container misses"});
  auto measure = [&](const char* name, std::int64_t tile) {
    dmv::ir::Sdfg sdfg = dmv::workloads::matmul(/*b_column_major=*/false);
    if (tile > 0) {
      dmv::ir::State& state = sdfg.states()[0];
      dmv::transforms::tile_map(state, find_map(state), "i", tile);
      dmv::transforms::tile_map(state, find_map(state), "j", tile);
      dmv::transforms::tile_map(state, find_map(state), "k", tile);
    }
    sim::AccessTrace trace = sim::simulate(sdfg, params);
    sim::StackDistanceResult distances =
        sim::stack_distances(trace, line_size);
    sim::MissReport report =
        sim::classify_misses(trace, distances, threshold);
    sim::MovementEstimate movement =
        sim::physical_movement(trace, report, line_size);
    const int b = trace.container_id("B");
    table.add_row({name, std::to_string(report.total.misses()),
                   std::to_string(movement.total_bytes),
                   std::to_string(report.per_container[b].misses())});
  };
  measure("untiled (i,j,k)", 0);
  measure("tiled 4x4x4", 4);
  measure("tiled 6x6x6", 6);
  measure("tiled 8x8x8", 8);
  measure("tiled 12x12x12", 12);
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nExpected shape: tiling cuts misses substantially vs the untiled "
      "sweep; over-large tiles drift back toward untiled behaviour as "
      "the tile working set outgrows the modeled cache.\n");
  return 0;
}
