// Fig 6: the global view of the BERT encoder through the optimization
// stages. The paper's three panels show (left) the baseline graph with
// two series of red high-volume edges, (center) the graph after the
// first fusion set with those edges gone, (right) the graph after the
// second set with fewer low-arithmetic-intensity nodes.
//
// Reproduced series per stage: map count, container count, total logical
// movement at BERT-LARGE parameters, the hottest edges (what the user
// would click), and the number of low-intensity maps.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "dmv/analysis/analysis.hpp"
#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

namespace analysis = dmv::analysis;
namespace viz = dmv::viz;
using dmv::workloads::BertStage;

const char* stage_name(BertStage stage) {
  switch (stage) {
    case BertStage::Baseline:
      return "baseline";
    case BertStage::Fused1:
      return "1st fusion set";
    case BertStage::Fused2:
      return "2nd fusion set";
  }
  return "?";
}

}  // namespace

int main() {
  std::filesystem::create_directories("dmv_renders");
  const dmv::symbolic::SymbolMap params = dmv::workloads::bert_large();
  std::printf(
      "Fig 6 reproduction: BERT encoder global view across fusion "
      "stages (BERT-LARGE: B=8 H=16 SM=512 I=1024 emb=4096 P=64).\n\n");

  viz::TextTable table({"stage", "maps", "containers", "logical GB moved",
                        "maps w/ intensity < 0.25"});
  for (BertStage stage :
       {BertStage::Baseline, BertStage::Fused1, BertStage::Fused2}) {
    dmv::ir::Sdfg sdfg = dmv::workloads::bert_encoder(stage);
    int maps = 0;
    for (const dmv::ir::Node& node : sdfg.states()[0].nodes()) {
      if (node.kind == dmv::ir::NodeKind::MapEntry) ++maps;
    }
    const double gigabytes =
        static_cast<double>(
            analysis::total_movement_bytes(sdfg).evaluate(params)) /
        1e9;
    int low_intensity = 0;
    for (const analysis::MapIntensity& intensity :
         analysis::map_intensities(sdfg, params)) {
      if (intensity.intensity < 0.25) ++low_intensity;
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2f", gigabytes);
    table.add_row({stage_name(stage), std::to_string(maps),
                   std::to_string(sdfg.arrays().size()), buffer,
                   std::to_string(low_intensity)});

    // Render the panel: mean-centered data-movement heatmap, as in the
    // left panel of the figure.
    auto volumes = analysis::edge_volumes(sdfg);
    std::vector<double> values;
    values.reserve(volumes.size());
    for (const auto& volume : volumes) {
      values.push_back(
          static_cast<double>(volume.bytes.evaluate(params)));
    }
    viz::HeatmapScale scale =
        viz::HeatmapScale::fit(values, viz::ScalingPolicy::MeanCentered);
    viz::GraphRenderOptions options;
    for (std::size_t i = 0; i < volumes.size(); ++i) {
      options.edge_heat[volumes[i].ref.edge_index] =
          scale.normalize(values[i]);
    }
    std::ofstream out(std::string("dmv_renders/fig6_") +
                      std::to_string(static_cast<int>(stage)) + "_" +
                      "movement.svg");
    out << render_state_svg(sdfg.states()[0], options);
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nExpected shape (paper): maps and logical volume strictly drop "
      "with each fusion set; low-intensity map count drops in the second "
      "set.\n");

  // The edges the user clicks in the left panel: top of the volume
  // ranking, naming the fusable softmax-pipeline transients.
  dmv::ir::Sdfg baseline = dmv::workloads::bert_encoder(BertStage::Baseline);
  auto ranked = analysis::rank_edges_by_volume(baseline, params);
  std::printf("\nTop 12 hottest edges in the baseline (click targets):\n");
  viz::TextTable hot({"rank", "container", "GB"});
  for (std::size_t i = 0; i < 12 && i < ranked.size(); ++i) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2f", ranked[i].bytes / 1e9);
    hot.add_row({std::to_string(i + 1), ranked[i].data, buffer});
  }
  std::printf("%s", hot.str().c_str());
  std::printf("SVG renders written to dmv_renders/fig6_*.svg\n");
  return 0;
}
