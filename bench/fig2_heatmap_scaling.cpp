// Fig 2: the three adaptive heatmap scaling methods and their use cases.
//
// The paper shows the same observations colored under mean-centered,
// histogram, and median-centered scaling:
//   * mean     — outliers get visually distinct colors (bottleneck
//                detection),
//   * histogram— every distinct observation gets its own color
//                (distribution display),
//   * median   — similar magnitudes group into similar colors while
//                outliers still read as hot.
// This harness regenerates the figure as tables of value -> normalized
// position -> color, over distributions engineered like the figure's.

#include <cstdio>
#include <vector>

#include "dmv/viz/render.hpp"

namespace {

using dmv::viz::ColorScheme;
using dmv::viz::HeatmapScale;
using dmv::viz::ScalingPolicy;

void show(const char* title, const std::vector<double>& values) {
  std::printf("\n%s\n", title);
  dmv::viz::TextTable table(
      {"value", "mean-centered", "histogram", "median-centered"});
  HeatmapScale mean = HeatmapScale::fit(values, ScalingPolicy::MeanCentered);
  HeatmapScale histogram =
      HeatmapScale::fit(values, ScalingPolicy::Histogram);
  HeatmapScale median =
      HeatmapScale::fit(values, ScalingPolicy::MedianCentered);
  char buffer[96];
  for (double v : values) {
    std::string row[4];
    std::snprintf(buffer, sizeof(buffer), "%.0f", v);
    row[0] = buffer;
    auto cell = [&](const HeatmapScale& scale) {
      const double t = scale.normalize(v);
      return std::string(
          dmv::viz::sample_color(t, ColorScheme::GreenYellowRed).hex()) +
             " (t=" + std::to_string(t).substr(0, 4) + ")";
    };
    table.add_row({row[0], cell(mean), cell(histogram), cell(median)});
  }
  std::printf("%s", table.str().c_str());
  std::printf("  (mean center c=%.1f, %zu histogram buckets, median c=%.1f)\n",
              mean.center(), histogram.bucket_count(), median.center());
}

}  // namespace

int main() {
  std::printf("Fig 2 reproduction: heatmap scaling methods.\n");

  // Fig 2 left use case: a distribution with one dominant outlier.
  // Mean-centered gives the outlier a saturated red while the bulk stays
  // green; median keeps more separation in the bulk.
  show("Outlier distribution (bottleneck detection):",
       {12, 15, 11, 14, 13, 16, 900});

  // Fig 2 middle use case: few distinct values with huge gaps. Histogram
  // scaling assigns evenly spaced colors regardless of the gaps.
  show("Sparse magnitudes (distribution display):", {1, 2, 4, 1000, 100000});

  // Fig 2 right use case: two clusters of similar magnitudes. Median
  // centering groups each cluster into similar colors.
  show("Two clusters (magnitude grouping):", {9, 10, 11, 480, 500, 520});

  // Ablation: the Cube-style interpolation baselines on the same data,
  // showing why the paper added the three methods above.
  std::printf("\nCube-baseline ablation on the outlier distribution:\n");
  std::vector<double> values{12, 15, 11, 14, 13, 16, 900};
  dmv::viz::TextTable table({"value", "linear", "exponential"});
  HeatmapScale linear = HeatmapScale::fit(values, ScalingPolicy::Linear);
  HeatmapScale exponential =
      HeatmapScale::fit(values, ScalingPolicy::Exponential);
  for (double v : values) {
    table.add_row({std::to_string(static_cast<int>(v)),
                   std::to_string(linear.normalize(v)).substr(0, 5),
                   std::to_string(exponential.normalize(v)).substr(0, 5)});
  }
  std::printf(
      "%s  Linear collapses the bulk to ~0 (outlier dominates the range); "
      "the paper's centered scales avoid this.\n",
      table.str().c_str());
  return 0;
}
