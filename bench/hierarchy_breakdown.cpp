// Extension bench (paper §VIII-a): the multi-level cache hierarchy
// backend. For each hdiff tuning stage, the exact L1/L2/L3 simulation
// breaks the single "physical movement" number of Fig 7 into per-level
// bandwidth, showing WHERE in the hierarchy each optimization step
// saves its traffic.

#include <cstdio>

#include "dmv/sim/hierarchy.hpp"
#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

namespace sim = dmv::sim;
using dmv::workloads::HdiffVariant;

const char* variant_name(HdiffVariant variant) {
  switch (variant) {
    case HdiffVariant::Baseline:
      return "baseline";
    case HdiffVariant::Reshaped:
      return "reshaped";
    case HdiffVariant::Reordered:
      return "+reordered";
    case HdiffVariant::Padded:
      return "+padded";
  }
  return "?";
}

}  // namespace

int main() {
  const dmv::symbolic::SymbolMap params = dmv::workloads::hdiff_local();
  // The 1/32-scale problem gets a 1/512-scale hierarchy, following the
  // paper's guidance to scale the cache model with the parameterization.
  const sim::HierarchyConfig config = sim::HierarchyConfig::typical(512);

  std::printf(
      "Cache-hierarchy breakdown of the hdiff tuning stages "
      "(L1=%lld B, L2=%lld B, L3=%lld B, %d B lines).\n\n",
      static_cast<long long>(config.levels[0].total_size),
      static_cast<long long>(config.levels[1].total_size),
      static_cast<long long>(config.levels[2].total_size),
      config.line_size);

  dmv::viz::TextTable table({"stage", "L1 hits", "L2 hits", "L3 hits",
                             "memory", "bytes from L2", "bytes from mem"});
  for (HdiffVariant variant :
       {HdiffVariant::Baseline, HdiffVariant::Reshaped,
        HdiffVariant::Reordered, HdiffVariant::Padded}) {
    dmv::ir::Sdfg sdfg = dmv::workloads::hdiff(variant);
    sim::AccessTrace trace = sim::simulate(sdfg, params);
    sim::HierarchyResult result = sim::simulate_hierarchy(trace, config);
    table.add_row({variant_name(variant),
                   std::to_string(result.total_hits(0)),
                   std::to_string(result.total_hits(1)),
                   std::to_string(result.total_hits(2)),
                   std::to_string(result.total_memory_accesses()),
                   std::to_string(result.bytes_into_level(0)),
                   std::to_string(result.bytes_into_level(2))});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nExpected shape: the tuning steps move satisfaction up the "
      "hierarchy — L1 hits rise monotonically through the reorder while "
      "traffic out of L2 falls; memory traffic is dominated by the "
      "compulsory footprint at every stage.\n");
  return 0;
}
