// sweep_throughput: end-to-end latency of the interactive parameter
// sweep — the paper's core loop (drag a slider, re-simulate the region,
// recompute the derived metrics, redraw). For each workload we run a
// slider sweep of several bindings; each binding executes the full
// bind -> simulate -> stack distance -> access counts -> element
// distance stats -> miss classification pipeline.
//
// Measured configurations:
//   * serial, interpreted engine (options.compiled = false, threads = 1)
//     — the pre-optimization baseline;
//   * serial, compiled engine (CompiledExpr evaluation, threads = 1)
//     — isolates the expression-compilation speedup;
//   * compiled engine at 2 / 8 / hardware threads, sweep parallel
//     across bindings — the interactive-rate configuration.
//
// Results go to stdout and to BENCH_sweep.json (machine readable).
// Speedups are reported against the interpreted serial baseline; the
// hardware thread count is recorded so a 1-core runner's numbers are
// not mistaken for a scaling ceiling.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dmv/par/par.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

using dmv::sim::AccessTrace;
using dmv::sim::SimulationOptions;
using dmv::symbolic::SymbolMap;

struct SweepCase {
  std::string name;
  dmv::ir::Sdfg sdfg;
  std::vector<SymbolMap> bindings;  ///< The slider positions.
};

// Checksum keeps the pipeline honest (nothing optimized away) and lets
// configurations cross-validate: every engine/thread count must agree.
std::int64_t run_pipeline(const dmv::ir::Sdfg& sdfg, const SymbolMap& binding,
                          const SimulationOptions& options) {
  const AccessTrace trace = dmv::sim::simulate(sdfg, binding, options);
  const auto distances = dmv::sim::stack_distances(trace, 64);
  const auto counts = dmv::sim::count_accesses(trace);
  const auto report = dmv::sim::classify_misses(trace, distances, 512);
  std::int64_t checksum = report.total.misses() + trace.executions;
  for (std::size_t c = 0; c < trace.layouts.size(); ++c) {
    const auto stats = dmv::sim::element_distance_stats(
        trace, distances, static_cast<int>(c));
    for (std::int64_t cold : stats.cold_count) checksum += cold;
    for (std::int64_t count : counts.reads[c]) checksum += count;
  }
  return checksum;
}

// The simulate stage in isolation: the only stage whose inner loop the
// expression compiler touches, so its ratio is the CompiledExpr speedup
// undiluted by the engine-independent metric passes.
std::int64_t run_simulate_only(const SweepCase& sweep,
                               const SimulationOptions& options) {
  std::int64_t total = 0;
  for (const SymbolMap& binding : sweep.bindings) {
    const AccessTrace trace = dmv::sim::simulate(sweep.sdfg, binding, options);
    total += trace.executions + static_cast<std::int64_t>(trace.events.size());
  }
  return total;
}

std::int64_t run_sweep(const SweepCase& sweep,
                       const SimulationOptions& options) {
  std::vector<std::int64_t> checksums(sweep.bindings.size());
  // Parallel across bindings; the nested metric passes fall back to
  // serial inside pool tasks, so each binding's pipeline stays on one
  // thread while bindings spread over the pool.
  dmv::par::parallel_for(
      sweep.bindings.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t b = begin; b < end; ++b) {
          checksums[b] = run_pipeline(sweep.sdfg, sweep.bindings[b], options);
        }
      });
  std::int64_t total = 0;
  for (std::int64_t checksum : checksums) total += checksum;
  return total;
}

struct Measurement {
  double best_ms = 0;
  std::int64_t checksum = 0;
};

template <typename Fn>
Measurement measure(Fn&& fn, int repetitions) {
  Measurement measurement;
  measurement.best_ms = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    measurement.checksum = fn();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    measurement.best_ms = std::min(measurement.best_ms, ms);
  }
  return measurement;
}

}  // namespace

int main() {
  using dmv::workloads::HdiffVariant;

  std::vector<SweepCase> cases;
  {
    std::vector<SymbolMap> bindings;
    for (std::int64_t k : {8, 10, 12, 14, 16, 18}) {
      bindings.push_back(SymbolMap{{"I", 24}, {"J", 24}, {"K", k}});
    }
    cases.push_back({"hdiff", dmv::workloads::hdiff(HdiffVariant::Baseline),
                     std::move(bindings)});
  }
  {
    std::vector<SymbolMap> bindings;
    for (std::int64_t sm : {4, 6, 8, 10, 12, 14}) {
      SymbolMap binding = dmv::workloads::bert_small();
      binding["SM"] = sm;
      bindings.push_back(std::move(binding));
    }
    cases.push_back({"bert",
                     dmv::workloads::bert_encoder(dmv::workloads::BertStage::Fused2),
                     std::move(bindings)});
  }

  const int hardware = dmv::par::hardware_threads();
  const int repetitions = 5;
  std::vector<int> thread_counts{1, 2, 8};
  if (std::find(thread_counts.begin(), thread_counts.end(), hardware) ==
      thread_counts.end()) {
    thread_counts.push_back(hardware);
  }

  std::ofstream json("BENCH_sweep.json");
  json << "{\n  \"benchmark\": \"sweep_throughput\",\n";
  json << "  \"hardware_threads\": " << hardware << ",\n";
  json << "  \"repetitions\": " << repetitions << ",\n";
  json << "  \"workloads\": [\n";

  for (std::size_t w = 0; w < cases.size(); ++w) {
    const SweepCase& sweep = cases[w];
    SimulationOptions interpreted;
    interpreted.compiled = false;
    SimulationOptions compiled;
    compiled.compiled = true;

    dmv::par::set_num_threads(1);
    const Measurement sim_interp =
        measure([&] { return run_simulate_only(sweep, interpreted); },
                repetitions);
    const Measurement sim_compiled = measure(
        [&] { return run_simulate_only(sweep, compiled); }, repetitions);
    const Measurement serial_interp =
        measure([&] { return run_sweep(sweep, interpreted); }, repetitions);
    const Measurement serial_compiled =
        measure([&] { return run_sweep(sweep, compiled); }, repetitions);
    if (serial_interp.checksum != serial_compiled.checksum ||
        sim_interp.checksum != sim_compiled.checksum) {
      std::cerr << "FATAL: engine mismatch on " << sweep.name << "\n";
      return 1;
    }

    const double simulate_speedup = sim_interp.best_ms / sim_compiled.best_ms;
    const double compiled_speedup =
        serial_interp.best_ms / serial_compiled.best_ms;
    std::cout << sweep.name << ": simulate-only interpreted "
              << sim_interp.best_ms << " ms, compiled " << sim_compiled.best_ms
              << " ms  (CompiledExpr alone: " << simulate_speedup << "x)\n";
    std::cout << "  pipeline: interpreted " << serial_interp.best_ms
              << " ms, compiled " << serial_compiled.best_ms << " ms  ("
              << compiled_speedup << "x end to end)\n";

    json << "    {\n      \"name\": \"" << sweep.name << "\",\n";
    json << "      \"bindings\": " << sweep.bindings.size() << ",\n";
    json << "      \"simulate_interpreted_ms\": " << sim_interp.best_ms
         << ",\n";
    json << "      \"simulate_compiled_ms\": " << sim_compiled.best_ms
         << ",\n";
    json << "      \"compiled_speedup\": " << simulate_speedup << ",\n";
    json << "      \"serial_interpreted_ms\": " << serial_interp.best_ms
         << ",\n";
    json << "      \"serial_compiled_ms\": " << serial_compiled.best_ms
         << ",\n";
    json << "      \"pipeline_compiled_speedup\": " << compiled_speedup
         << ",\n";
    json << "      \"threads\": [\n";

    for (std::size_t t = 0; t < thread_counts.size(); ++t) {
      const int threads = thread_counts[t];
      dmv::par::set_num_threads(threads);
      const Measurement parallel =
          measure([&] { return run_sweep(sweep, compiled); }, repetitions);
      if (parallel.checksum != serial_interp.checksum) {
        std::cerr << "FATAL: parallel mismatch on " << sweep.name << " at "
                  << threads << " threads\n";
        return 1;
      }
      const double speedup = serial_interp.best_ms / parallel.best_ms;
      std::cout << "  threads=" << threads << ": " << parallel.best_ms
                << " ms  (" << speedup << "x vs interpreted serial)\n";
      json << "        {\"threads\": " << threads
           << ", \"ms\": " << parallel.best_ms
           << ", \"speedup_vs_serial_interpreted\": " << speedup << "}"
           << (t + 1 < thread_counts.size() ? "," : "") << "\n";
    }
    json << "      ]\n    }" << (w + 1 < cases.size() ? "," : "") << "\n";
    dmv::par::set_num_threads(1);
  }
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_sweep.json\n";
  return 0;
}
