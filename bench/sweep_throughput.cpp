// sweep_throughput: end-to-end latency of the interactive parameter
// sweep — the paper's core loop (drag a slider, re-simulate the region,
// recompute the derived metrics, redraw). For each workload we run a
// slider sweep of several bindings; each binding executes the full
// bind -> simulate -> stack distance -> access counts -> element
// distance stats -> miss classification pipeline.
//
// Measured configurations:
//   * serial, interpreted engine (options.compiled = false, threads = 1)
//     — the pre-optimization baseline;
//   * serial, compiled engine (CompiledExpr evaluation, threads = 1,
//     lane_width = 1) — isolates the expression-compilation speedup;
//   * serial, batched compiled engine (lane_width 4 and 8) — the
//     simulate_batched series; a lane-width ablation whose traces are
//     checksum-validated against the scalar engine per binding;
//   * compiled engine at 2 / 8 / hardware threads, sweep parallel
//     across bindings — the interactive-rate configuration (skipped and
//     recorded as such when the machine has a single hardware thread);
//   * pipeline ablation: the same metric set as separate passes
//     (unfused), through MetricPipeline over a materialized trace
//     (fused), and through MetricPipeline in streaming mode (no event
//     vector) — all serial, all checksum-validated against each other;
//   * stack-distance algorithm ablation: naive O(n^2) list scan vs the
//     Fenwick-tree Olken pass on a size-capped trace;
//   * metrics breakdown: the mergeable parallel metric engine vs the
//     serial fused pass, per consumer (counts / distances / misses /
//     element_stats / cache) and for the full set, full-result
//     fingerprint-gated, with a thread-scaling series (or an explicit
//     skip record on a 1-core runner);
//   * session sweep: the same slider drag through dmv::session::Session
//     — cold (fresh cache), warm (every binding already cached), and
//     prefetched (fresh cache, speculative neighbor evaluation on) —
//     checksum-validated against the uncached pipeline.
//
// Results go to stdout and to BENCH_sweep.json (machine readable).
// Speedups are reported against the interpreted serial baseline; the
// hardware thread count is recorded so a 1-core runner's numbers are
// not mistaken for a scaling ceiling.
//
// `--smoke`: tiny workload, one repetition, no thread loop, no JSON —
// exits nonzero if the fused/streaming/unfused/session checksums
// diverge. CI runs this as the pipeline-ablation gate.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "dmv/analysis/analysis.hpp"
#include "dmv/par/par.hpp"
#include "dmv/session/session.hpp"
#include "dmv/sim/pipeline.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/store/artifact_store.hpp"
#include "dmv/store/trace_store.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

using dmv::sim::AccessTrace;
using dmv::sim::SimulationOptions;
using dmv::symbolic::SymbolMap;

// One workload's slider sweep. The binding list is derived ONCE from
// (base, symbol, values) in make_case, so every configuration — unfused,
// fused, streaming, thread-scaled, and the session sweep — measures the
// exact same slider positions.
struct SweepCase {
  std::string name;
  dmv::ir::Sdfg sdfg;
  SymbolMap base;                    ///< Fixed symbols.
  std::string symbol;                ///< The slider symbol.
  std::vector<std::int64_t> values;  ///< Its positions, in drag order.
  std::vector<SymbolMap> bindings;   ///< base + symbol=value, per value.
};

SweepCase make_case(std::string name, dmv::ir::Sdfg sdfg, SymbolMap base,
                    std::string symbol, std::vector<std::int64_t> values) {
  std::vector<SymbolMap> bindings;
  bindings.reserve(values.size());
  for (std::int64_t value : values) {
    SymbolMap binding = base;
    binding[symbol] = value;
    bindings.push_back(std::move(binding));
  }
  return SweepCase{std::move(name),   std::move(sdfg),
                   std::move(base),   std::move(symbol),
                   std::move(values), std::move(bindings)};
}

// The metric set every configuration computes; checksums keep the
// pipeline honest (nothing optimized away) and let configurations
// cross-validate: every engine/thread count/fusion mode must agree.
dmv::sim::PipelineConfig bench_config() {
  dmv::sim::PipelineConfig config;
  config.line_size = 64;
  config.counts = true;
  config.miss_threshold_lines = 512;
  config.element_stats = true;
  return config;
}

// The unfused metric set over an existing trace (no simulation).
std::int64_t run_metrics_unfused(const AccessTrace& trace) {
  const auto distances = dmv::sim::stack_distances(trace, 64);
  const auto counts = dmv::sim::count_accesses(trace);
  const auto report = dmv::sim::classify_misses(trace, distances, 512);
  std::int64_t checksum = report.total.misses() + trace.executions;
  for (std::size_t c = 0; c < trace.layouts.size(); ++c) {
    const auto stats = dmv::sim::element_distance_stats(
        trace, distances, static_cast<int>(c));
    for (std::int64_t cold : stats.cold_count) checksum += cold;
    for (std::int64_t count : counts.reads[c]) checksum += count;
  }
  return checksum;
}

std::int64_t run_pipeline(const dmv::ir::Sdfg& sdfg, const SymbolMap& binding,
                          const SimulationOptions& options) {
  const AccessTrace trace = dmv::sim::simulate(sdfg, binding, options);
  const auto distances = dmv::sim::stack_distances(trace, 64);
  const auto counts = dmv::sim::count_accesses(trace);
  const auto report = dmv::sim::classify_misses(trace, distances, 512);
  std::int64_t checksum = report.total.misses() + trace.executions;
  for (std::size_t c = 0; c < trace.layouts.size(); ++c) {
    const auto stats = dmv::sim::element_distance_stats(
        trace, distances, static_cast<int>(c));
    for (std::int64_t cold : stats.cold_count) checksum += cold;
    for (std::int64_t count : counts.reads[c]) checksum += count;
  }
  return checksum;
}

std::int64_t pipeline_checksum(const dmv::sim::PipelineResult& result) {
  std::int64_t checksum = result.misses.total.misses() + result.executions;
  for (std::size_t c = 0; c < result.element_stats.size(); ++c) {
    for (std::int64_t cold : result.element_stats[c].cold_count) {
      checksum += cold;
    }
    for (std::int64_t count : result.counts.reads[c]) checksum += count;
  }
  return checksum;
}

// Fused sweep: ONE MetricPipeline across all bindings, so the arena
// (trace columns, line table, Fenwick, per-element scratch) is
// allocated once and reused at every slider position.
std::int64_t run_fused(const SweepCase& sweep,
                       const SimulationOptions& options, bool streaming) {
  dmv::sim::MetricPipeline pipeline(bench_config());
  std::int64_t total = 0;
  for (const SymbolMap& binding : sweep.bindings) {
    const dmv::sim::PipelineResult result =
        streaming ? pipeline.run_streaming(sweep.sdfg, binding, options)
                  : pipeline.run(sweep.sdfg, binding, options);
    total += pipeline_checksum(result);
  }
  return total;
}

// The simulate stage in isolation: the only stage whose inner loop the
// expression compiler touches, so its ratio is the CompiledExpr speedup
// undiluted by the engine-independent metric passes.
std::int64_t run_simulate_only(const SweepCase& sweep,
                               const SimulationOptions& options) {
  std::int64_t total = 0;
  for (const SymbolMap& binding : sweep.bindings) {
    const AccessTrace trace = dmv::sim::simulate(sweep.sdfg, binding, options);
    total += trace.executions + static_cast<std::int64_t>(trace.events.size());
  }
  return total;
}

// Order-sensitive checksum over every event field: any reordered,
// duplicated, dropped, or mis-stamped event under parallel generation
// changes the value. This is the identity gate for the trace-generation
// series — executions + events.size() would miss a permutation.
std::int64_t trace_checksum(const AccessTrace& trace) {
  std::uint64_t h = 1469598103934665603ull ^
                    static_cast<std::uint64_t>(trace.executions);
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const dmv::sim::AccessEvent event = trace.events[i];
    std::uint64_t word = static_cast<std::uint64_t>(event.flat);
    word = word * 31 + static_cast<std::uint64_t>(event.container);
    word = word * 31 + (event.is_write ? 1 : 0);
    word = word * 31 + static_cast<std::uint64_t>(event.timestep);
    word = word * 31 + static_cast<std::uint64_t>(event.execution);
    word = word * 31 + static_cast<std::uint64_t>(event.tasklet);
    h = (h ^ word) * 1099511628211ull;
  }
  return static_cast<std::int64_t>(h);
}

// Trace generation ONLY (no metric passes), checksummed per binding —
// the tentpole's serial-vs-parallel series measures exactly the stage
// the chunk planner parallelizes.
std::int64_t run_trace_generation(const SweepCase& sweep,
                                  const SimulationOptions& options) {
  std::int64_t total = 0;
  for (const SymbolMap& binding : sweep.bindings) {
    total += trace_checksum(dmv::sim::simulate(sweep.sdfg, binding, options));
  }
  return total;
}

std::int64_t run_sweep(const SweepCase& sweep,
                       const SimulationOptions& options) {
  std::vector<std::int64_t> checksums(sweep.bindings.size());
  // Parallel across bindings; the nested metric passes fall back to
  // serial inside pool tasks, so each binding's pipeline stays on one
  // thread while bindings spread over the pool.
  dmv::par::parallel_for(
      sweep.bindings.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t b = begin; b < end; ++b) {
          checksums[b] = run_pipeline(sweep.sdfg, sweep.bindings[b], options);
        }
      });
  std::int64_t total = 0;
  for (std::int64_t checksum : checksums) total += checksum;
  return total;
}

// ---- metrics_breakdown ----------------------------------------------
//
// The mergeable parallel metric engine vs the serial fused pass, over
// pre-simulated traces (no simulation cost in either series). Gated on
// an FNV-1a fingerprint of EVERY PipelineResult field — a stronger
// check than the additive checksums above, because the engine's merge
// order must reproduce the serial pass bit for bit, not just in
// aggregate. Measured per consumer (counts / distances / misses /
// element_stats / cache) and for the full consumer set; the full set
// also gets a thread-scaling series (or an explicit skip record on a
// 1-core runner). The 1-thread ratio is a real speedup even without a
// pool: the engine's SIMD line derivation, flat-array LRU sets, and
// fissioned consumer loops beat the serial pass's per-event dispatch.

std::uint64_t fnv_fold(std::uint64_t hash, std::int64_t value) {
  hash ^= static_cast<std::uint64_t>(value);
  return hash * 1099511628211ull;
}

std::uint64_t result_fingerprint(const dmv::sim::PipelineResult& result) {
  std::uint64_t hash = 1469598103934665603ull;
  hash = fnv_fold(hash, result.events);
  hash = fnv_fold(hash, result.executions);
  hash = fnv_fold(hash, static_cast<std::int64_t>(result.containers.size()));
  for (const auto& column : result.counts.reads) {
    for (std::int64_t v : column) hash = fnv_fold(hash, v);
  }
  for (const auto& column : result.counts.writes) {
    for (std::int64_t v : column) hash = fnv_fold(hash, v);
  }
  hash = fnv_fold(hash, result.distances.line_size);
  for (std::int64_t d : result.distances.distances) hash = fnv_fold(hash, d);
  hash = fnv_fold(hash, result.misses.threshold_lines);
  for (const auto& column : result.misses.element_misses) {
    for (std::int64_t v : column) hash = fnv_fold(hash, v);
  }
  for (const auto& stats : result.misses.per_container) {
    hash = fnv_fold(hash, stats.cold);
    hash = fnv_fold(hash, stats.capacity);
    hash = fnv_fold(hash, stats.hits);
  }
  hash = fnv_fold(hash, result.misses.total.cold);
  hash = fnv_fold(hash, result.misses.total.capacity);
  hash = fnv_fold(hash, result.misses.total.hits);
  for (const auto& stats : result.element_stats) {
    for (std::int64_t v : stats.min) hash = fnv_fold(hash, v);
    for (std::int64_t v : stats.median) hash = fnv_fold(hash, v);
    for (std::int64_t v : stats.max) hash = fnv_fold(hash, v);
    for (std::int64_t v : stats.cold_count) hash = fnv_fold(hash, v);
  }
  hash = fnv_fold(hash, result.cache.config.line_size);
  hash = fnv_fold(hash, result.cache.config.total_size);
  hash = fnv_fold(hash, result.cache.config.ways);
  for (const auto& stats : result.cache.per_container) {
    hash = fnv_fold(hash, stats.cold);
    hash = fnv_fold(hash, stats.capacity);
    hash = fnv_fold(hash, stats.hits);
  }
  hash = fnv_fold(hash, result.cache.total.cold);
  hash = fnv_fold(hash, result.cache.total.capacity);
  hash = fnv_fold(hash, result.cache.total.hits);
  hash = fnv_fold(hash, result.movement.line_size);
  for (std::int64_t v : result.movement.bytes_per_container) {
    hash = fnv_fold(hash, v);
  }
  hash = fnv_fold(hash, result.movement.total_bytes);
  return hash;
}

// The breakdown's headline config: the bench metric set PLUS the exact
// cache simulation (the consumer the set-partitioned engine speeds up
// most) and movement.
dmv::sim::PipelineConfig breakdown_config() {
  dmv::sim::PipelineConfig config = bench_config();
  config.cache = dmv::sim::CacheConfig{};
  config.movement = true;
  return config;
}

// One consumer's drive over the pre-simulated traces. `merged` selects
// the engine; min_events 0 so the engine always engages when asked.
std::uint64_t run_metric_engine(const std::vector<AccessTrace>& traces,
                                dmv::sim::PipelineConfig config,
                                bool merged) {
  config.parallel_metrics = merged;
  config.parallel_metrics_min_events = 0;
  dmv::sim::MetricPipeline pipeline(config);
  std::uint64_t hash = 0;
  for (const AccessTrace& trace : traces) {
    hash ^= result_fingerprint(pipeline.run(trace));
  }
  return hash;
}

// Fingerprint gate shared by the full run and --smoke: the engine at 8
// (oversubscribed) threads must reproduce the serial fused pass's full
// result fingerprint for every consumer subset.
bool validate_metric_merge(const SweepCase& sweep,
                           const SimulationOptions& options) {
  std::vector<AccessTrace> traces;
  for (const SymbolMap& binding : sweep.bindings) {
    traces.push_back(dmv::sim::simulate(sweep.sdfg, binding, options));
  }
  dmv::sim::PipelineConfig cache_only;
  cache_only.counts = false;
  cache_only.cache = dmv::sim::CacheConfig{};
  const dmv::sim::PipelineConfig configs[] = {breakdown_config(),
                                              cache_only};
  for (const dmv::sim::PipelineConfig& config : configs) {
    std::uint64_t serial = 0;
    std::uint64_t merged = 0;
    {
      dmv::par::ThreadScope scope(1);
      serial = run_metric_engine(traces, config, /*merged=*/false);
    }
    {
      dmv::par::ThreadScope scope(8);
      merged = run_metric_engine(traces, config, /*merged=*/true);
    }
    if (serial != merged) {
      std::cerr << "FATAL: metric merge fingerprint mismatch on "
                << sweep.name << "\n";
      return false;
    }
  }
  return true;
}

// ---- symbolic_ops ----------------------------------------------------
//
// The symbolic engine in isolation: the repeated build -> simplify ->
// analyze -> substitute -> evaluate series the session layer issues on
// every slider drag, over each workload's real movement-volume
// expression. Run twice: with the hash-consing memo tables and
// intern-time metadata on (default engine) and with
// set_symbolic_memoization(false) (legacy tree walks). Results are
// checksummed and must match bit for bit — the switch may only change
// time, never values.
std::int64_t run_symbolic_ops(const SweepCase& sweep, int rounds) {
  using dmv::symbolic::Expr;
  std::int64_t checksum = 0;
  for (int round = 0; round < rounds; ++round) {
    // Build: re-derive the symbolic volume from the IR (exercises the
    // interner and construction-time simplification).
    const Expr metric = dmv::analysis::total_movement_bytes(sweep.sdfg);
    // Deep canonicalization pass (simplify-memo hit after round 0).
    const Expr simple = dmv::symbolic::simplified(metric);
    // Free-symbol and reachability analyses (intern-time metadata vs
    // legacy recursive walks).
    checksum += static_cast<std::int64_t>(simple.free_symbols().size());
    checksum += simple.depends_on(sweep.symbol) ? 1 : 0;
    for (const SymbolMap& binding : sweep.bindings) {
      // Partial substitution of the fixed symbols, then the slider.
      const Expr partial = simple.substitute(sweep.base);
      const Expr bound = partial.substitute(binding);
      checksum += bound.is_constant() ? bound.constant_value() : -1;
      // Direct evaluation of the full expression under the binding.
      checksum += simple.evaluate(binding);
    }
  }
  return checksum;
}

struct Measurement {
  double best_ms = 0;
  std::int64_t checksum = 0;
};

template <typename Fn>
Measurement measure(Fn&& fn, int repetitions) {
  Measurement measurement;
  measurement.best_ms = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    measurement.checksum = fn();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    measurement.best_ms = std::min(measurement.best_ms, ms);
  }
  return measurement;
}

std::vector<SweepCase> build_cases(bool smoke) {
  using dmv::workloads::HdiffVariant;
  std::vector<SweepCase> cases;
  {
    // 20 slider positions in the full run — enough drag steps for the
    // session sweep's cold/warm contrast to be meaningful.
    std::vector<std::int64_t> ks;
    if (smoke) {
      ks = {2, 3, 4};
    } else {
      for (std::int64_t k = 4; k <= 23; ++k) ks.push_back(k);
    }
    const std::int64_t ij = smoke ? 8 : 16;
    cases.push_back(make_case(
        "hdiff", dmv::workloads::hdiff(HdiffVariant::Baseline),
        SymbolMap{{"I", ij}, {"J", ij}}, "K", std::move(ks)));
  }
  {
    cases.push_back(make_case(
        "bert", dmv::workloads::bert_encoder(dmv::workloads::BertStage::Fused2),
        dmv::workloads::bert_small(), "SM",
        smoke ? std::vector<std::int64_t>{4, 6}
              : std::vector<std::int64_t>{4, 6, 8, 10, 12, 14}));
  }
  return cases;
}

// ---- session sweep ---------------------------------------------------

dmv::session::SessionConfig session_config(const SimulationOptions& options,
                                           bool prefetch) {
  dmv::session::SessionConfig config;
  config.pipeline = bench_config();
  config.simulation = options;
  config.prefetch = prefetch;
  return config;
}

// One pass of the slider drag through a session; checksummed exactly
// like the uncached configurations so they must agree bit for bit.
std::int64_t run_session_pass(dmv::session::Session& session,
                              const SweepCase& sweep) {
  std::int64_t total = 0;
  for (std::int64_t value : sweep.values) {
    session.set_symbol(sweep.symbol, value);
    total += pipeline_checksum(*session.metrics());
  }
  return total;
}

dmv::session::Session fresh_session(const SweepCase& sweep,
                                    const SimulationOptions& options,
                                    bool prefetch) {
  dmv::session::Session session(sweep.sdfg,
                                session_config(options, prefetch));
  session.set_binding(sweep.base);
  return session;
}

// Fused-vs-unfused-vs-streaming checksum gate shared by the full run
// and --smoke. Returns false (and prints) on divergence.
bool validate_ablation(const SweepCase& sweep,
                       const SimulationOptions& options) {
  dmv::par::set_num_threads(1);
  const std::int64_t unfused = run_sweep(sweep, options);
  const std::int64_t fused = run_fused(sweep, options, /*streaming=*/false);
  const std::int64_t streaming =
      run_fused(sweep, options, /*streaming=*/true);
  if (unfused != fused || unfused != streaming) {
    std::cerr << "FATAL: pipeline ablation mismatch on " << sweep.name
              << ": unfused " << unfused << ", fused " << fused
              << ", streaming " << streaming << "\n";
    return false;
  }
  // Session identity: cold (prefetching) and warm passes must both
  // reproduce the uncached checksum — cached and speculatively computed
  // artifacts are bit-identical to direct evaluation.
  dmv::session::Session session =
      fresh_session(sweep, options, /*prefetch=*/true);
  const std::int64_t session_cold = run_session_pass(session, sweep);
  const std::int64_t session_warm = run_session_pass(session, sweep);
  if (session_cold != unfused || session_warm != unfused) {
    std::cerr << "FATAL: session sweep mismatch on " << sweep.name
              << ": uncached " << unfused << ", session cold "
              << session_cold << ", session warm " << session_warm << "\n";
    return false;
  }
  return true;
}

// symbolic_ops checksum gate: the memoized engine and the legacy walks
// must produce identical values. Restores memoization even on failure.
bool validate_symbolic_ops(const SweepCase& sweep, int rounds) {
  dmv::symbolic::set_symbolic_memoization(true);
  const std::int64_t memoized = run_symbolic_ops(sweep, rounds);
  dmv::symbolic::set_symbolic_memoization(false);
  const std::int64_t legacy = run_symbolic_ops(sweep, rounds);
  dmv::symbolic::set_symbolic_memoization(true);
  if (memoized != legacy) {
    std::cerr << "FATAL: symbolic_ops mismatch on " << sweep.name
              << ": memoized " << memoized << ", legacy " << legacy << "\n";
    return false;
  }
  return true;
}

// Lane-width identity gate: the batched innermost loop at W=4 and W=8
// must reproduce the scalar (W=1) order-sensitive trace checksum for
// every binding. Serial threads so only the lane width varies.
bool validate_batched_trace(const SweepCase& sweep,
                            const SimulationOptions& options) {
  dmv::par::ThreadScope scope(1);
  SimulationOptions serial = options;
  serial.parallel_trace = false;
  for (const SymbolMap& binding : sweep.bindings) {
    std::int64_t checksums[3];
    const int widths[3] = {1, 4, 8};
    for (int i = 0; i < 3; ++i) {
      serial.lane_width = widths[i];
      checksums[i] =
          trace_checksum(dmv::sim::simulate(sweep.sdfg, binding, serial));
    }
    if (checksums[0] != checksums[1] || checksums[0] != checksums[2]) {
      std::cerr << "FATAL: batched trace mismatch on " << sweep.name
                << ": W=1 " << checksums[0] << ", W=4 " << checksums[1]
                << ", W=8 " << checksums[2] << "\n";
      return false;
    }
  }
  return true;
}

// Serial-vs-parallel trace identity gate: the chunked generator at 8
// (oversubscribed) threads must reproduce the serial trace checksum for
// every binding, materialized and streaming alike.
bool validate_parallel_trace(const SweepCase& sweep,
                             const SimulationOptions& options) {
  SimulationOptions serial_options = options;
  serial_options.parallel_trace = false;
  SimulationOptions parallel_options = options;
  parallel_options.parallel_trace = true;
  for (const SymbolMap& binding : sweep.bindings) {
    std::int64_t serial = 0;
    std::int64_t parallel = 0;
    {
      dmv::par::ThreadScope scope(1);
      serial =
          trace_checksum(dmv::sim::simulate(sweep.sdfg, binding, serial_options));
    }
    {
      dmv::par::ThreadScope scope(8);
      parallel = trace_checksum(
          dmv::sim::simulate(sweep.sdfg, binding, parallel_options));
    }
    if (serial != parallel) {
      std::cerr << "FATAL: parallel trace mismatch on " << sweep.name
                << ": serial " << serial << ", parallel(8) " << parallel
                << "\n";
      return false;
    }
  }
  return true;
}

// The fixed-capacity interactive build the delta engine is designed
// around: arrays allocated at KMAX, the K slider bounding only the
// chunked outermost loop. I and J sized so one k slice clears the delta
// planner's per-chunk event floor (slices map one-to-one onto chunks).
dmv::ir::Sdfg fixed_capacity_hdiff() {
  return dmv::workloads::fixed_capacity(
      dmv::workloads::hdiff(dmv::workloads::HdiffVariant::Reordered),
      {{"K", "KMAX"}});
}

// Delta-vs-cold identity gate: a persistent run_delta pipeline dragged
// across the sweep must reproduce a fresh cold pipeline's checksum at
// every binding (whatever path each step took), and a fixed-capacity
// append step must actually take the chunk-delta path with a resumed
// checkpoint.
bool validate_delta_recompute(const SweepCase& sweep,
                              const SimulationOptions& options) {
  dmv::par::ThreadScope scope(1);
  dmv::sim::MetricPipeline delta(bench_config());
  for (const SymbolMap& binding : sweep.bindings) {
    const std::int64_t warm =
        pipeline_checksum(delta.run_delta(sweep.sdfg, 1, binding, options));
    dmv::sim::MetricPipeline fresh(bench_config());
    const std::int64_t cold =
        pipeline_checksum(fresh.run(sweep.sdfg, binding, options));
    if (warm != cold) {
      std::cerr << "FATAL: delta recompute mismatch on " << sweep.name
                << ": delta " << warm << ", cold " << cold << "\n";
      return false;
    }
  }
  dmv::ir::Sdfg fc = fixed_capacity_hdiff();
  SymbolMap binding{{"I", 20}, {"J", 20}, {"K", 4}, {"KMAX", 8}};
  dmv::sim::MetricPipeline delta_fc(bench_config());
  delta_fc.run_delta(fc, 1, binding, options);
  binding["K"] = 5;
  dmv::sim::DeltaOutcome outcome;
  const std::int64_t stepped = pipeline_checksum(
      delta_fc.run_delta(fc, 1, binding, options, &outcome));
  dmv::sim::MetricPipeline fresh(bench_config());
  const std::int64_t cold =
      pipeline_checksum(fresh.run(fc, binding, options));
  if (stepped != cold ||
      outcome.path != dmv::sim::DeltaOutcome::Path::kChunkDelta ||
      !outcome.resumed) {
    std::cerr << "FATAL: fixed-capacity delta step on hdiff: checksum "
              << stepped << " vs cold " << cold << ", path "
              << static_cast<int>(outcome.path) << ", resumed "
              << outcome.resumed << " (" << outcome.reason << ")\n";
    return false;
  }
  return true;
}

// Trace-store + artifact-codec identity gate: the compressed store must
// reproduce every binding's trace bit for bit (order-sensitive
// checksum), and the disk-tier PipelineResult codec must round-trip a
// real metric bundle exactly.
bool validate_trace_store(const SweepCase& sweep,
                          const SimulationOptions& options) {
  dmv::par::ThreadScope scope(1);
  for (const SymbolMap& binding : sweep.bindings) {
    const AccessTrace trace = dmv::sim::simulate(sweep.sdfg, binding, options);
    dmv::store::TraceStoreReader reader =
        dmv::store::TraceStoreReader::from_bytes(
            dmv::store::pack_trace(trace));
    if (trace_checksum(reader.read_trace()) != trace_checksum(trace)) {
      std::cerr << "FATAL: trace store round-trip mismatch on " << sweep.name
                << "\n";
      return false;
    }
  }
  dmv::sim::MetricPipeline pipeline(bench_config());
  const dmv::sim::PipelineResult result =
      pipeline.run(sweep.sdfg, sweep.bindings.front(), options);
  const dmv::session::ArtifactCodec codec =
      dmv::store::pipeline_result_codec();
  std::shared_ptr<const void> decoded = codec.decode(codec.encode(&result));
  if (!decoded ||
      pipeline_checksum(*static_cast<const dmv::sim::PipelineResult*>(
          decoded.get())) != pipeline_checksum(result)) {
    std::cerr << "FATAL: pipeline-result codec mismatch on " << sweep.name
              << "\n";
    return false;
  }
  return true;
}

int run_smoke() {
  SimulationOptions compiled;
  compiled.compiled = true;
  for (const SweepCase& sweep : build_cases(/*smoke=*/true)) {
    if (!validate_ablation(sweep, compiled)) return 1;
    if (!validate_parallel_trace(sweep, compiled)) return 1;
    if (!validate_batched_trace(sweep, compiled)) return 1;
    if (!validate_symbolic_ops(sweep, /*rounds=*/2)) return 1;
    if (!validate_delta_recompute(sweep, compiled)) return 1;
    if (!validate_trace_store(sweep, compiled)) return 1;
    if (!validate_metric_merge(sweep, compiled)) return 1;
    std::cout << "smoke " << sweep.name
              << ": unfused == fused == streaming == session, "
              << "serial trace == parallel trace (8 threads), "
              << "batched trace (W=4/8) == scalar, "
              << "symbolic_ops memoized == legacy, "
              << "delta recompute == cold, "
              << "trace store round-trip == source, "
              << "merged metrics (8 threads) == serial fused\n";
  }
  std::cout << "smoke OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return run_smoke();
  }

  std::vector<SweepCase> cases = build_cases(/*smoke=*/false);

  const int hardware = dmv::par::hardware_threads();
  const int repetitions = 5;
  std::vector<int> thread_counts{1, 2, 8};
  if (std::find(thread_counts.begin(), thread_counts.end(), hardware) ==
      thread_counts.end()) {
    thread_counts.push_back(hardware);
  }

  std::ofstream json("BENCH_sweep.json");
  json << "{\n  \"benchmark\": \"sweep_throughput\",\n";
  json << "  \"hardware_threads\": " << hardware << ",\n";
  json << "  \"repetitions\": " << repetitions << ",\n";
  json << "  \"workloads\": [\n";

  for (std::size_t w = 0; w < cases.size(); ++w) {
    const SweepCase& sweep = cases[w];
    SimulationOptions interpreted;
    interpreted.compiled = false;
    // `compiled` keeps the default lane width (the shipping
    // configuration, batched); `compiled_scalar` pins lane_width = 1 so
    // the simulate_compiled series still isolates expression
    // compilation alone, and the batched ratio is measured against it.
    SimulationOptions compiled;
    compiled.compiled = true;
    SimulationOptions compiled_scalar = compiled;
    compiled_scalar.lane_width = 1;
    SimulationOptions compiled_w4 = compiled;
    compiled_w4.lane_width = 4;

    dmv::par::set_num_threads(1);
    const Measurement sim_interp =
        measure([&] { return run_simulate_only(sweep, interpreted); },
                repetitions);
    const Measurement sim_compiled = measure(
        [&] { return run_simulate_only(sweep, compiled_scalar); },
        repetitions);
    // Lane-width ablation (W=1 is sim_compiled above). Identity is
    // enforced on full order-sensitive trace checksums, untimed.
    const Measurement sim_batched4 = measure(
        [&] { return run_simulate_only(sweep, compiled_w4); }, repetitions);
    const Measurement sim_batched = measure(
        [&] { return run_simulate_only(sweep, compiled); }, repetitions);
    if (!validate_batched_trace(sweep, compiled)) return 1;
    const Measurement serial_interp =
        measure([&] { return run_sweep(sweep, interpreted); }, repetitions);
    const Measurement serial_compiled =
        measure([&] { return run_sweep(sweep, compiled); }, repetitions);
    if (serial_interp.checksum != serial_compiled.checksum ||
        sim_interp.checksum != sim_compiled.checksum ||
        sim_compiled.checksum != sim_batched.checksum ||
        sim_compiled.checksum != sim_batched4.checksum) {
      std::cerr << "FATAL: engine mismatch on " << sweep.name << "\n";
      return 1;
    }

    // Trace generation, serial vs chunk-parallel (the tentpole series).
    // Identity is enforced on an order-sensitive full-trace checksum; on
    // a single-core runner parallel_trace auto-disables and the series
    // records planner overhead instead of a speedup.
    SimulationOptions trace_serial_options = compiled;
    trace_serial_options.parallel_trace = false;
    dmv::par::set_num_threads(1);
    const Measurement trace_serial = measure(
        [&] { return run_trace_generation(sweep, trace_serial_options); },
        repetitions);
    dmv::par::set_num_threads(hardware);
    const Measurement trace_parallel = measure(
        [&] { return run_trace_generation(sweep, compiled); }, repetitions);
    dmv::par::set_num_threads(1);
    if (trace_serial.checksum != trace_parallel.checksum) {
      std::cerr << "FATAL: trace-generation checksum mismatch on "
                << sweep.name << "\n";
      return 1;
    }
    const double trace_speedup = trace_serial.best_ms / trace_parallel.best_ms;
    std::cout << "  trace generation: serial " << trace_serial.best_ms
              << " ms, parallel(" << hardware << ") "
              << trace_parallel.best_ms << " ms  (" << trace_speedup << "x";
    if (hardware == 1) {
      std::cout << "; parallel trace auto-disabled, ratio = planner overhead";
    }
    std::cout << ")\n";

    // Pipeline ablation: same metrics, same engine, 1 thread — the
    // only variable is fusion/streaming.
    const Measurement fused = measure(
        [&] { return run_fused(sweep, compiled, false); }, repetitions);
    const Measurement streaming = measure(
        [&] { return run_fused(sweep, compiled, true); }, repetitions);
    if (fused.checksum != serial_compiled.checksum ||
        streaming.checksum != serial_compiled.checksum) {
      std::cerr << "FATAL: pipeline ablation mismatch on " << sweep.name
                << "\n";
      return 1;
    }
    const double fused_speedup = serial_compiled.best_ms / fused.best_ms;
    const double streaming_vs_materialized =
        fused.best_ms / streaming.best_ms;

    // Metrics-only ablation: pre-simulated traces, so the ratio
    // isolates pass fusion + arena reuse from the (identical)
    // simulation cost that dominates the end-to-end numbers.
    std::vector<AccessTrace> traces;
    traces.reserve(sweep.bindings.size());
    for (const SymbolMap& binding : sweep.bindings) {
      traces.push_back(dmv::sim::simulate(sweep.sdfg, binding, compiled));
    }
    const Measurement metrics_unfused = measure(
        [&] {
          std::int64_t total = 0;
          for (const AccessTrace& trace : traces) {
            total += run_metrics_unfused(trace);
          }
          return total;
        },
        repetitions);
    const Measurement metrics_fused = measure(
        [&] {
          dmv::sim::MetricPipeline pipeline(bench_config());
          std::int64_t total = 0;
          for (const AccessTrace& trace : traces) {
            total += pipeline_checksum(pipeline.run(trace));
          }
          return total;
        },
        repetitions);
    if (metrics_unfused.checksum != metrics_fused.checksum) {
      std::cerr << "FATAL: metrics-only ablation mismatch on " << sweep.name
                << "\n";
      return 1;
    }
    const double metrics_fused_speedup =
        metrics_unfused.best_ms / metrics_fused.best_ms;

    // Mergeable metric engine breakdown: serial fused pass vs the
    // partitioned engine, per consumer and for the full set, over the
    // same pre-simulated traces. Full-result fingerprints gate every
    // pair. Both headline series run at 1 thread, so the ratio isolates
    // the engine's single-core wins (SIMD line derivation, flat LRU
    // arrays, fissioned loops) from pool scaling, which gets its own
    // series below.
    struct ConsumerSeries {
      const char* name;
      dmv::sim::PipelineConfig config;
      Measurement serial;
      Measurement merged;
    };
    std::vector<ConsumerSeries> breakdown;
    {
      dmv::sim::PipelineConfig counts_only;
      breakdown.push_back({"counts", counts_only, {}, {}});
      dmv::sim::PipelineConfig distances_only;
      distances_only.counts = false;
      distances_only.keep_distances = true;
      breakdown.push_back({"distances", distances_only, {}, {}});
      dmv::sim::PipelineConfig misses_only;
      misses_only.counts = false;
      misses_only.miss_threshold_lines = 512;
      breakdown.push_back({"misses", misses_only, {}, {}});
      dmv::sim::PipelineConfig stats_only;
      stats_only.counts = false;
      stats_only.element_stats = true;
      breakdown.push_back({"element_stats", stats_only, {}, {}});
      dmv::sim::PipelineConfig cache_only;
      cache_only.counts = false;
      cache_only.cache = dmv::sim::CacheConfig{};
      breakdown.push_back({"cache", cache_only, {}, {}});
      breakdown.push_back({"all", breakdown_config(), {}, {}});
    }
    dmv::par::set_num_threads(1);
    for (ConsumerSeries& series : breakdown) {
      series.serial = measure(
          [&] {
            return static_cast<std::int64_t>(
                run_metric_engine(traces, series.config, /*merged=*/false));
          },
          repetitions);
      series.merged = measure(
          [&] {
            return static_cast<std::int64_t>(
                run_metric_engine(traces, series.config, /*merged=*/true));
          },
          repetitions);
      if (series.serial.checksum != series.merged.checksum) {
        std::cerr << "FATAL: metrics_breakdown fingerprint mismatch on "
                  << sweep.name << " consumer " << series.name << "\n";
        return 1;
      }
    }
    const ConsumerSeries& breakdown_all = breakdown.back();
    const double breakdown_speedup =
        breakdown_all.serial.best_ms / breakdown_all.merged.best_ms;
    // Multi-core scaling of the full consumer set (engine partitions
    // track the knob); recorded as skipped on a 1-core runner.
    std::vector<std::pair<int, Measurement>> breakdown_threads;
    if (hardware > 1) {
      for (const int threads : {2, 8}) {
        dmv::par::set_num_threads(threads);
        const Measurement at_threads = measure(
            [&] {
              return static_cast<std::int64_t>(run_metric_engine(
                  traces, breakdown_all.config, /*merged=*/true));
            },
            repetitions);
        if (at_threads.checksum != breakdown_all.serial.checksum) {
          std::cerr << "FATAL: metrics_breakdown thread mismatch on "
                    << sweep.name << " at " << threads << " threads\n";
          return 1;
        }
        breakdown_threads.emplace_back(threads, at_threads);
      }
      dmv::par::set_num_threads(1);
    }

    // Trace store: compression ratio and pack/unpack throughput over
    // the same materialized traces (the out-of-core backing format).
    // Identity gate on the order-sensitive trace checksum per binding.
    std::size_t store_events = 0;
    std::size_t store_raw_bytes = 0;
    for (const AccessTrace& trace : traces) {
      store_events += trace.events.size();
      store_raw_bytes += trace.events.capacity_bytes();
    }
    std::vector<std::string> packed(traces.size());
    const Measurement store_pack = measure(
        [&] {
          std::int64_t bytes = 0;
          for (std::size_t b = 0; b < traces.size(); ++b) {
            packed[b] = dmv::store::pack_trace(traces[b]);
            bytes += static_cast<std::int64_t>(packed[b].size());
          }
          return bytes;
        },
        repetitions);
    std::size_t store_packed_bytes = 0;
    for (const std::string& bytes : packed) store_packed_bytes += bytes.size();
    const Measurement store_unpack = measure(
        [&] {
          std::int64_t total = 0;
          for (const std::string& bytes : packed) {
            dmv::store::TraceStoreReader reader =
                dmv::store::TraceStoreReader::from_bytes(bytes);
            dmv::sim::EventList events;
            reader.read_events(events);
            total += static_cast<std::int64_t>(events.size());
          }
          return total;
        },
        repetitions);
    for (std::size_t b = 0; b < traces.size(); ++b) {
      dmv::store::TraceStoreReader reader =
          dmv::store::TraceStoreReader::from_bytes(packed[b]);
      if (trace_checksum(reader.read_trace()) != trace_checksum(traces[b])) {
        std::cerr << "FATAL: trace store round-trip mismatch on "
                  << sweep.name << "\n";
        return 1;
      }
    }
    const double store_ratio =
        static_cast<double>(store_raw_bytes) /
        static_cast<double>(std::max<std::size_t>(store_packed_bytes, 1));

    // Session sweep: the same drag through the memoizing session layer.
    // Cold constructs a fresh session per repetition (cache empty, no
    // speculation); warm re-drags a session that has seen every binding;
    // prefetched is cold with speculative neighbor evaluation on.
    const Measurement session_cold = measure(
        [&] {
          dmv::session::Session session =
              fresh_session(sweep, compiled, /*prefetch=*/false);
          return run_session_pass(session, sweep);
        },
        repetitions);
    dmv::session::Session warm_session =
        fresh_session(sweep, compiled, /*prefetch=*/false);
    run_session_pass(warm_session, sweep);
    const Measurement session_warm = measure(
        [&] { return run_session_pass(warm_session, sweep); }, repetitions);
    const Measurement session_prefetched = measure(
        [&] {
          dmv::session::Session session =
              fresh_session(sweep, compiled, /*prefetch=*/true);
          return run_session_pass(session, sweep);
        },
        repetitions);
    if (session_cold.checksum != streaming.checksum ||
        session_warm.checksum != streaming.checksum ||
        session_prefetched.checksum != streaming.checksum) {
      std::cerr << "FATAL: session sweep mismatch on " << sweep.name << "\n";
      return 1;
    }
    const double warm_speedup = session_cold.best_ms / session_warm.best_ms;
    const double prefetched_speedup =
        session_cold.best_ms / session_prefetched.best_ms;
    // What the prefetcher actually did under the current thread knob —
    // on a 1-worker runner speculation is skipped, and "prefetched"
    // above degenerates to a second cold pass. Record it so the numbers
    // aren't misread as "prefetch doesn't help".
    std::string prefetch_mode;
    {
      dmv::session::Session probe =
          fresh_session(sweep, compiled, /*prefetch=*/true);
      run_session_pass(probe, sweep);
      prefetch_mode = probe.stats().prefetch;
    }

    const double simulate_speedup = sim_interp.best_ms / sim_compiled.best_ms;
    const double compiled_speedup =
        serial_interp.best_ms / serial_compiled.best_ms;
    const double batched_speedup = sim_compiled.best_ms / sim_batched.best_ms;
    std::cout << sweep.name << ": simulate-only interpreted "
              << sim_interp.best_ms << " ms, compiled " << sim_compiled.best_ms
              << " ms  (CompiledExpr alone: " << simulate_speedup << "x)\n";
    std::cout << "  simulate batched: W=1 " << sim_compiled.best_ms
              << " ms, W=4 " << sim_batched4.best_ms << " ms, W=8 "
              << sim_batched.best_ms << " ms  (" << batched_speedup
              << "x vs compiled scalar)\n";
    std::cout << "  pipeline: interpreted " << serial_interp.best_ms
              << " ms, compiled " << serial_compiled.best_ms << " ms  ("
              << compiled_speedup << "x end to end)\n";
    std::cout << "  ablation: unfused " << serial_compiled.best_ms
              << " ms, fused " << fused.best_ms << " ms ("
              << fused_speedup << "x), streaming " << streaming.best_ms
              << " ms (" << streaming_vs_materialized << "x vs fused)\n";
    std::cout << "  metrics only: unfused " << metrics_unfused.best_ms
              << " ms, fused " << metrics_fused.best_ms << " ms ("
              << metrics_fused_speedup << "x)\n";
    std::cout << "  metrics breakdown (1 thread, fingerprint-gated):";
    for (const ConsumerSeries& series : breakdown) {
      std::cout << " " << series.name << " " << series.serial.best_ms
                << "->" << series.merged.best_ms << " ms";
    }
    std::cout << "  (all: " << breakdown_speedup << "x)\n";
    if (breakdown_threads.empty()) {
      std::cout << "  metrics breakdown scaling: skipped (1 hardware "
                   "thread)\n";
    } else {
      std::cout << "  metrics breakdown scaling:";
      for (const auto& [threads, at_threads] : breakdown_threads) {
        std::cout << " " << threads << "t " << at_threads.best_ms << " ms";
      }
      std::cout << "\n";
    }
    std::cout << "  trace store: " << store_events << " events, raw "
              << store_raw_bytes << " B, packed " << store_packed_bytes
              << " B (" << store_ratio << "x), pack "
              << store_pack.best_ms << " ms, unpack "
              << store_unpack.best_ms << " ms (round trip identical)\n";
    std::cout << "  session (" << sweep.values.size() << " positions of "
              << sweep.symbol << "): cold " << session_cold.best_ms
              << " ms, warm " << session_warm.best_ms << " ms ("
              << warm_speedup << "x), prefetched "
              << session_prefetched.best_ms << " ms ("
              << prefetched_speedup << "x, prefetch: " << prefetch_mode
              << ")\n";

    json << "    {\n      \"name\": \"" << sweep.name << "\",\n";
    json << "      \"bindings\": " << sweep.bindings.size() << ",\n";
    json << "      \"simulate_interpreted_ms\": " << sim_interp.best_ms
         << ",\n";
    json << "      \"simulate_compiled_ms\": " << sim_compiled.best_ms
         << ",\n";
    json << "      \"compiled_speedup\": " << simulate_speedup << ",\n";
    json << "      \"simulate_batched_ms\": " << sim_batched.best_ms << ",\n";
    json << "      \"batched_speedup\": " << batched_speedup << ",\n";
    json << "      \"lane_ablation\": {\n";
    json << "        \"w1_ms\": " << sim_compiled.best_ms << ",\n";
    json << "        \"w4_ms\": " << sim_batched4.best_ms << ",\n";
    json << "        \"w8_ms\": " << sim_batched.best_ms << ",\n";
    json << "        \"checksum_identical\": true\n";
    json << "      },\n";
    json << "      \"serial_interpreted_ms\": " << serial_interp.best_ms
         << ",\n";
    json << "      \"serial_compiled_ms\": " << serial_compiled.best_ms
         << ",\n";
    json << "      \"pipeline_compiled_speedup\": " << compiled_speedup
         << ",\n";
    json << "      \"trace_generation\": {\n";
    json << "        \"serial_ms\": " << trace_serial.best_ms << ",\n";
    json << "        \"parallel_ms\": " << trace_parallel.best_ms << ",\n";
    json << "        \"parallel_threads\": " << hardware << ",\n";
    json << "        \"speedup\": " << trace_speedup << ",\n";
    json << "        \"checksum_identical\": true";
    if (hardware == 1) {
      json << ",\n        \"note\": \"parallel trace auto-disabled "
              "(1 hardware thread); ratio measures planner overhead\"";
    }
    json << "\n      },\n";
    json << "      \"pipeline_ablation\": {\n";
    json << "        \"unfused_ms\": " << serial_compiled.best_ms << ",\n";
    json << "        \"fused_ms\": " << fused.best_ms << ",\n";
    json << "        \"streaming_ms\": " << streaming.best_ms << ",\n";
    json << "        \"fused_speedup\": " << fused_speedup << ",\n";
    json << "        \"streaming_vs_materialized\": "
         << streaming_vs_materialized << ",\n";
    json << "        \"metrics_unfused_ms\": " << metrics_unfused.best_ms
         << ",\n";
    json << "        \"metrics_fused_ms\": " << metrics_fused.best_ms
         << ",\n";
    json << "        \"metrics_fused_speedup\": " << metrics_fused_speedup
         << "\n";
    json << "      },\n";
    json << "      \"metrics_breakdown\": {\n";
    json << "        \"consumers\": [\n";
    for (std::size_t s = 0; s < breakdown.size(); ++s) {
      const ConsumerSeries& series = breakdown[s];
      json << "          {\"name\": \"" << series.name
           << "\", \"serial_ms\": " << series.serial.best_ms
           << ", \"merged_ms\": " << series.merged.best_ms
           << ", \"speedup\": "
           << series.serial.best_ms / series.merged.best_ms << "}"
           << (s + 1 < breakdown.size() ? "," : "") << "\n";
    }
    json << "        ],\n";
    json << "        \"serial_ms\": " << breakdown_all.serial.best_ms
         << ",\n";
    json << "        \"merged_ms\": " << breakdown_all.merged.best_ms
         << ",\n";
    json << "        \"speedup\": " << breakdown_speedup << ",\n";
    json << "        \"fingerprint_identical\": true,\n";
    if (breakdown_threads.empty()) {
      json << "        \"thread_scaling\": \"skipped (1 hardware thread)\"\n";
    } else {
      json << "        \"thread_scaling\": [\n";
      for (std::size_t t = 0; t < breakdown_threads.size(); ++t) {
        json << "          {\"threads\": " << breakdown_threads[t].first
             << ", \"merged_ms\": " << breakdown_threads[t].second.best_ms
             << "}" << (t + 1 < breakdown_threads.size() ? "," : "")
             << "\n";
      }
      json << "        ]\n";
    }
    json << "      },\n";
    json << "      \"trace_store\": {\n";
    json << "        \"events\": " << store_events << ",\n";
    json << "        \"raw_bytes\": " << store_raw_bytes << ",\n";
    json << "        \"packed_bytes\": " << store_packed_bytes << ",\n";
    json << "        \"compression_ratio\": " << store_ratio << ",\n";
    json << "        \"pack_ms\": " << store_pack.best_ms << ",\n";
    json << "        \"unpack_ms\": " << store_unpack.best_ms << ",\n";
    json << "        \"checksum_identical\": true\n";
    json << "      },\n";
    json << "      \"session\": {\n";
    json << "        \"bindings\": " << sweep.values.size() << ",\n";
    json << "        \"symbol\": \"" << sweep.symbol << "\",\n";
    json << "        \"cold_ms\": " << session_cold.best_ms << ",\n";
    json << "        \"warm_ms\": " << session_warm.best_ms << ",\n";
    json << "        \"prefetched_ms\": " << session_prefetched.best_ms
         << ",\n";
    json << "        \"warm_speedup\": " << warm_speedup << ",\n";
    json << "        \"prefetched_speedup\": " << prefetched_speedup << ",\n";
    json << "        \"prefetch\": \"" << prefetch_mode << "\"\n";
    json << "      },\n";

    if (hardware == 1) {
      std::cout << "  thread scaling: skipped (1 hardware thread)\n";
      json << "      \"thread_scaling\": \"skipped (1 hardware thread)\"\n";
    } else {
      json << "      \"threads\": [\n";
      for (std::size_t t = 0; t < thread_counts.size(); ++t) {
        const int threads = thread_counts[t];
        dmv::par::set_num_threads(threads);
        const Measurement parallel =
            measure([&] { return run_sweep(sweep, compiled); }, repetitions);
        if (parallel.checksum != serial_interp.checksum) {
          std::cerr << "FATAL: parallel mismatch on " << sweep.name << " at "
                    << threads << " threads\n";
          return 1;
        }
        const double speedup = serial_interp.best_ms / parallel.best_ms;
        std::cout << "  threads=" << threads << ": " << parallel.best_ms
                  << " ms  (" << speedup << "x vs interpreted serial)\n";
        json << "        {\"threads\": " << threads
             << ", \"ms\": " << parallel.best_ms
             << ", \"speedup_vs_serial_interpreted\": " << speedup << "}"
             << (t + 1 < thread_counts.size() ? "," : "") << "\n";
      }
      json << "      ]\n";
    }
    json << "    }" << (w + 1 < cases.size() ? "," : "") << "\n";
    dmv::par::set_num_threads(1);
  }
  json << "  ],\n";

  // ---- slider_step ---------------------------------------------------
  //
  // The interactive latency the delta engine exists for: ONE K-slider
  // step on the fixed-capacity hdiff build, timed per mechanism.
  //   cold        fresh session, empty cache, no checkpoint;
  //   warm        re-request of a binding the session has seen
  //               (artifact-cache hit);
  //   symbolic    only the Tier-1 closed-form bundle, at unseen
  //               bindings (no simulation at all);
  //   chunk_delta a warm checkpoint stepped to an UNSEEN binding: only
  //               the appended k slice simulates and the fused metric
  //               state resumes in place.
  // Identity gate: the final delta step's checksum must equal a fresh
  // cold evaluation of the same binding, and every measured step must
  // actually classify as a chunk delta.
  {
    dmv::par::set_num_threads(1);
    dmv::ir::Sdfg fc = fixed_capacity_hdiff();
    const std::int64_t ij = 64;
    const std::int64_t kmax = 40;
    auto bind = [&](std::int64_t k) {
      return SymbolMap{{"I", ij}, {"J", ij}, {"K", k}, {"KMAX", kmax}};
    };
    // Per-step metric set: the interactive subscription (counts + miss
    // classification). element_stats stays off — its finalize re-sorts
    // every finite distance pair, an O(events) cost per request that
    // belongs to a details-panel click, not to every slider step.
    dmv::sim::PipelineConfig step_config;
    step_config.counts = true;
    step_config.miss_threshold_lines = 512;
    SimulationOptions compiled;
    compiled.compiled = true;
    dmv::session::SessionConfig cfg;
    cfg.pipeline = step_config;
    cfg.simulation = compiled;
    cfg.prefetch = false;
    const std::int64_t k_cold = 36;

    const Measurement cold = measure(
        [&] {
          dmv::session::Session s(fc, cfg);
          s.set_binding(bind(k_cold));
          return pipeline_checksum(*s.metrics());
        },
        repetitions);

    dmv::session::Session warm_s(fc, cfg);
    warm_s.set_binding(bind(k_cold));
    warm_s.metrics();
    const Measurement warm = measure(
        [&] {
          warm_s.set_symbol("K", k_cold);
          return pipeline_checksum(*warm_s.metrics());
        },
        repetitions);

    dmv::session::Session symbolic_s(fc, cfg);
    symbolic_s.set_binding(bind(2));
    symbolic_s.closed_form();  // Bundle built and cached up front.
    std::int64_t k_sym = 2;
    const Measurement symbolic = measure(
        [&] {
          symbolic_s.set_symbol("K", 2 + (++k_sym % 30));
          return symbolic_s.closed_form()->total_events;
        },
        repetitions);

    // Walk K upward through never-seen values so each measured step is
    // an artifact-cache MISS satisfied by the chunk-delta path alone.
    dmv::session::Session delta_s(fc, cfg);
    std::int64_t k_delta =
        k_cold - static_cast<std::int64_t>(repetitions) - 1;
    delta_s.set_binding(bind(k_delta));
    delta_s.metrics();  // Warm checkpoint at the drag's start.
    delta_s.reset_stats();
    const Measurement chunk_delta = measure(
        [&] {
          delta_s.set_symbol("K", ++k_delta);
          return pipeline_checksum(*delta_s.metrics());
        },
        repetitions);
    const dmv::session::SessionStats delta_stats = delta_s.stats();

    dmv::session::Session check(fc, cfg);
    check.set_binding(bind(k_delta));
    const bool identical =
        pipeline_checksum(*check.metrics()) == chunk_delta.checksum;
    if (!identical) {
      std::cerr << "FATAL: slider_step delta checksum mismatch\n";
      return 1;
    }
    if (delta_stats.steps_chunk_delta !=
        static_cast<std::int64_t>(repetitions)) {
      std::cerr << "FATAL: slider_step expected " << repetitions
                << " chunk-delta steps, got "
                << delta_stats.steps_chunk_delta << " (cold "
                << delta_stats.steps_cold << ")\n";
      return 1;
    }

    const double delta_speedup = cold.best_ms / chunk_delta.best_ms;
    std::cout << "slider step (fixed-capacity hdiff, I=J=" << ij
              << ", KMAX=" << kmax << ", K=" << k_cold << "): cold "
              << cold.best_ms << " ms, warm " << warm.best_ms
              << " ms, symbolic " << symbolic.best_ms
              << " ms, chunk-delta " << chunk_delta.best_ms << " ms  ("
              << delta_speedup << "x vs cold, checksums identical)\n";
    json << "  \"slider_step\": {\n";
    json << "    \"workload\": \"hdiff fixed-capacity Reordered\",\n";
    json << "    \"I\": " << ij << ", \"J\": " << ij << ", \"KMAX\": "
         << kmax << ", \"K\": " << k_cold << ",\n";
    json << "    \"cold_ms\": " << cold.best_ms << ",\n";
    json << "    \"warm_ms\": " << warm.best_ms << ",\n";
    json << "    \"symbolic_delta_ms\": " << symbolic.best_ms << ",\n";
    json << "    \"chunk_delta_ms\": " << chunk_delta.best_ms << ",\n";
    json << "    \"chunk_delta_speedup\": " << delta_speedup << ",\n";
    json << "    \"checksum_identical\": true,\n";
    json << "    \"steps\": {\"full_hit\": " << delta_stats.steps_full_hit
         << ", \"symbolic\": " << delta_stats.steps_symbolic
         << ", \"chunk_delta\": " << delta_stats.steps_chunk_delta
         << ", \"cold\": " << delta_stats.steps_cold << "}\n";
    json << "  },\n";
  }

  // ---- persistent_cache ----------------------------------------------
  //
  // The warm-start tier: one slider request served three ways.
  //   cold       fresh session, nothing cached anywhere — a full
  //              simulate + metric pass;
  //   ram_warm   re-request against a live session (RAM artifact hit);
  //   disk_warm  fresh session AND fresh shared cache over a populated
  //              cache directory — the restarted-process path: decode
  //              the DMVA artifact from disk instead of simulating.
  // Identity gate: all three checksums match, and every disk_warm
  // repetition actually hit the disk tier.
  {
    dmv::par::set_num_threads(1);
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "dmv_bench_persistent_cache";
    fs::remove_all(dir);
    const dmv::ir::Sdfg sdfg =
        dmv::workloads::hdiff(dmv::workloads::HdiffVariant::Baseline);
    const SymbolMap binding{{"I", 64}, {"J", 64}, {"K", 16}};
    SimulationOptions compiled;
    compiled.compiled = true;
    dmv::session::SessionConfig cfg;
    cfg.pipeline = bench_config();
    cfg.simulation = compiled;
    cfg.prefetch = false;
    const auto make_shared_cache = [&] {
      dmv::session::SharedArtifactCache::Config shared;
      shared.disk_dir = dir.string();
      shared.codecs.emplace_back(dmv::session::metrics_artifact_kind(),
                                 dmv::store::pipeline_result_codec());
      return std::make_shared<dmv::session::SharedArtifactCache>(shared);
    };

    const Measurement cold = measure(
        [&] {
          dmv::session::Session session(sdfg, cfg);
          session.set_binding(binding);
          return pipeline_checksum(*session.metrics());
        },
        repetitions);

    {
      // Populate the disk tier once (the prior run being warm-started).
      dmv::session::SessionConfig writer_cfg = cfg;
      writer_cfg.shared_cache = make_shared_cache();
      dmv::session::Session session(sdfg, writer_cfg);
      session.set_binding(binding);
      session.metrics();
    }

    dmv::session::SessionConfig ram_cfg = cfg;
    ram_cfg.shared_cache = make_shared_cache();
    dmv::session::Session ram_session(sdfg, ram_cfg);
    ram_session.set_binding(binding);
    ram_session.metrics();  // Promote disk -> RAM once, untimed.
    const Measurement ram_warm = measure(
        [&] { return pipeline_checksum(*ram_session.metrics()); },
        repetitions);

    std::int64_t disk_hits = 0;
    const Measurement disk_warm = measure(
        [&] {
          dmv::session::SessionConfig warm_cfg = cfg;
          warm_cfg.shared_cache = make_shared_cache();
          dmv::session::Session session(sdfg, warm_cfg);
          session.set_binding(binding);
          const std::int64_t checksum =
              pipeline_checksum(*session.metrics());
          disk_hits += warm_cfg.shared_cache->stats().disk_hits;
          return checksum;
        },
        repetitions);

    if (cold.checksum != ram_warm.checksum ||
        cold.checksum != disk_warm.checksum) {
      std::cerr << "FATAL: persistent-cache checksum mismatch\n";
      return 1;
    }
    if (disk_hits < repetitions) {
      std::cerr << "FATAL: persistent-cache disk_warm expected "
                << repetitions << " disk hits, got " << disk_hits << "\n";
      return 1;
    }
    fs::remove_all(dir);

    const double disk_vs_cold = cold.best_ms / disk_warm.best_ms;
    std::cout << "persistent cache (hdiff I=J=64 K=16): cold "
              << cold.best_ms << " ms, ram-warm " << ram_warm.best_ms
              << " ms, disk-warm " << disk_warm.best_ms << " ms  ("
              << disk_vs_cold << "x vs cold, checksums identical)\n";
    json << "  \"persistent_cache\": {\n";
    json << "    \"workload\": \"hdiff\",\n";
    json << "    \"cold_ms\": " << cold.best_ms << ",\n";
    json << "    \"ram_warm_ms\": " << ram_warm.best_ms << ",\n";
    json << "    \"disk_warm_ms\": " << disk_warm.best_ms << ",\n";
    json << "    \"disk_warm_speedup\": " << disk_vs_cold << ",\n";
    json << "    \"disk_hits\": " << disk_hits << ",\n";
    json << "    \"checksum_identical\": true\n";
    json << "  },\n";
  }

  // Symbolic-engine ablation: the repeated analysis series per workload,
  // hash-consed engine vs legacy tree walks (identical checksums
  // enforced; only the time may differ).
  {
    dmv::par::set_num_threads(1);
    constexpr int kSymbolicRounds = 40;
    json << "  \"symbolic_ops\": [\n";
    for (std::size_t w = 0; w < cases.size(); ++w) {
      const SweepCase& sweep = cases[w];
      dmv::symbolic::set_symbolic_memoization(true);
      const Measurement memoized = measure(
          [&] { return run_symbolic_ops(sweep, kSymbolicRounds); },
          repetitions);
      dmv::symbolic::set_symbolic_memoization(false);
      const Measurement legacy = measure(
          [&] { return run_symbolic_ops(sweep, kSymbolicRounds); },
          repetitions);
      dmv::symbolic::set_symbolic_memoization(true);
      if (memoized.checksum != legacy.checksum) {
        std::cerr << "FATAL: symbolic_ops mismatch on " << sweep.name << "\n";
        return 1;
      }
      const double speedup = legacy.best_ms / memoized.best_ms;
      std::cout << "symbolic ops (" << sweep.name << ", " << kSymbolicRounds
                << " rounds x " << sweep.bindings.size()
                << " bindings): legacy " << legacy.best_ms
                << " ms, memoized " << memoized.best_ms << " ms  ("
                << speedup << "x)\n";
      json << "    {\"name\": \"" << sweep.name
           << "\", \"rounds\": " << kSymbolicRounds
           << ", \"bindings\": " << sweep.bindings.size()
           << ", \"legacy_ms\": " << legacy.best_ms
           << ", \"memoized_ms\": " << memoized.best_ms
           << ", \"speedup\": " << speedup << "}"
           << (w + 1 < cases.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
  }

  // Stack-distance algorithm ablation on a size-capped trace (the naive
  // pass is O(n^2); the cap keeps it to a fraction of a second while
  // still dominating per-event overheads).
  {
    dmv::par::set_num_threads(1);
    const dmv::ir::Sdfg sdfg =
        dmv::workloads::hdiff(dmv::workloads::HdiffVariant::Baseline);
    const AccessTrace full =
        dmv::sim::simulate(sdfg, SymbolMap{{"I", 32}, {"J", 32}, {"K", 8}});
    constexpr std::size_t kCap = 32768;
    AccessTrace capped;
    capped.containers = full.containers;
    capped.layouts = full.layouts;
    capped.executions = full.executions;
    const std::size_t n = std::min(kCap, full.events.size());
    capped.events.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      capped.events.push_back(full.events[i]);
    }

    const Measurement naive = measure(
        [&] {
          const auto result = dmv::sim::stack_distances_naive(capped, 64);
          return static_cast<std::int64_t>(result.distances.size());
        },
        3);
    const Measurement fenwick = measure(
        [&] {
          const auto result = dmv::sim::stack_distances(capped, 64);
          return static_cast<std::int64_t>(result.distances.size());
        },
        3);
    if (dmv::sim::stack_distances_naive(capped, 64).distances !=
        dmv::sim::stack_distances(capped, 64).distances) {
      std::cerr << "FATAL: stack-distance ablation mismatch\n";
      return 1;
    }
    const double algorithmic_speedup = naive.best_ms / fenwick.best_ms;
    std::cout << "stack distance (" << n << " events): naive "
              << naive.best_ms << " ms, fenwick " << fenwick.best_ms
              << " ms  (" << algorithmic_speedup << "x)\n";
    json << "  \"stack_distance\": {\n";
    json << "    \"events\": " << n << ",\n";
    json << "    \"naive_ms\": " << naive.best_ms << ",\n";
    json << "    \"fenwick_ms\": " << fenwick.best_ms << ",\n";
    json << "    \"algorithmic_speedup\": " << algorithmic_speedup << "\n";
    json << "  }\n}\n";
  }
  std::cout << "wrote BENCH_sweep.json\n";
  return 0;
}
