// §V-F validation: the paper deliberately counts no conflict misses,
// assuming a fully-associative LRU cache and citing McKinley & Temam and
// Beyls & D'Hollander that this predicts total misses well for low-
// associativity caches. This harness regenerates that evidence on our
// workloads: stack-distance prediction vs exact set-associative LRU
// simulation across associativities, plus a threshold-sensitivity sweep
// (the UI knob of §V-F b).

#include <cmath>
#include <cstdio>

#include "dmv/sim/sim.hpp"
#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

namespace sim = dmv::sim;

struct Workload {
  const char* name;
  dmv::ir::Sdfg sdfg;
  dmv::symbolic::SymbolMap params;
};

}  // namespace

int main() {
  const int line_size = 64;
  std::vector<Workload> workloads;
  workloads.push_back({"matmul 24^3", dmv::workloads::matmul(),
                       {{"M", 24}, {"K", 24}, {"N", 24}}});
  workloads.push_back({"conv 3c 9x9", dmv::workloads::conv2d(),
                       dmv::workloads::conv2d_fig4()});
  workloads.push_back(
      {"hdiff 16x16x8",
       dmv::workloads::hdiff(dmv::workloads::HdiffVariant::Baseline),
       {{"I", 16}, {"J", 16}, {"K", 8}}});
  workloads.push_back(
      {"hdiff tuned",
       dmv::workloads::hdiff(dmv::workloads::HdiffVariant::Padded),
       {{"I", 16}, {"J", 16}, {"K", 8}}});

  std::printf(
      "Cache-model validation (paper §V-F): fully-associative stack-"
      "distance prediction vs exact set-associative LRU simulation.\n"
      "Cache sizes span a scaled L1 (64-256 lines = 4-16 KiB).\n\n");
  dmv::viz::TextTable table({"workload", "cache lines", "predicted",
                             "1-way", "2-way", "4-way", "8-way",
                             "max error"});
  for (Workload& workload : workloads) {
    sim::AccessTrace trace = sim::simulate(workload.sdfg, workload.params);
    sim::StackDistanceResult distances =
        sim::stack_distances(trace, line_size);
    for (std::int64_t lines : {64, 128, 256}) {
      const std::int64_t predicted =
          sim::classify_misses(trace, distances, lines).total.misses();
      std::vector<std::string> row{workload.name, std::to_string(lines),
                                   std::to_string(predicted)};
      double max_error = 0;
      for (int ways : {1, 2, 4, 8}) {
        sim::CacheConfig config{line_size, lines * line_size, ways};
        const std::int64_t truth =
            sim::simulate_cache(trace, config).total.misses();
        row.push_back(std::to_string(truth));
        max_error = std::max(
            max_error, std::abs(double(predicted) - double(truth)) /
                           double(std::max<std::int64_t>(truth, 1)));
      }
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.1f%%", 100.0 * max_error);
      row.push_back(buffer);
      table.add_row(std::move(row));
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nExpected shape (McKinley&Temam, Beyls&D'Hollander): predictions "
      "track the set-associative truth closely; errors shrink with "
      "associativity (conflicts are a minority of misses).\n");

  // Threshold-sensitivity ablation: the user's capacity knob.
  std::printf("\nThreshold sensitivity (hdiff baseline, misses):\n");
  sim::AccessTrace trace = sim::simulate(
      dmv::workloads::hdiff(dmv::workloads::HdiffVariant::Baseline),
      dmv::workloads::hdiff_local());
  sim::StackDistanceResult distances =
      sim::stack_distances(trace, line_size);
  dmv::viz::TextTable sweep({"threshold [lines]", "cold", "capacity",
                             "hits"});
  for (std::int64_t threshold : {2, 4, 8, 16, 32, 64, 128}) {
    sim::MissReport report =
        sim::classify_misses(trace, distances, threshold);
    sweep.add_row({std::to_string(threshold),
                   std::to_string(report.total.cold),
                   std::to_string(report.total.capacity),
                   std::to_string(report.total.hits)});
  }
  std::printf("%s", sweep.str().c_str());
  std::printf(
      "Cold misses are threshold-invariant; capacity misses fall "
      "monotonically as the modeled cache grows.\n");
  return 0;
}
