// Table I (horizontal diffusion rows): runtime of hdiff at three tuning
// stages on the full NPBench problem size (I = J = 256, K = 160). The
// three program versions mirror the paper's: the NumPy-style baseline
// that materializes lap/flx/fly in separate passes, a single-pass fused
// stencil standing in for the best compiled NPBench CPU version, and the
// hand-tuned version the local view leads to (fused + [K, I+4, J+4]
// layout + k-outermost loops + cache-line-padded rows). Shape under
// reproduction: strictly decreasing runtime down the column.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

using dmv::workloads::kernels::HdiffData;
using dmv::workloads::kernels::make_hdiff_data;

constexpr std::int64_t kI = 256, kJ = 256, kK = 160;

void BM_Hdiff_Baseline(benchmark::State& state) {
  HdiffData data = make_hdiff_data(kI, kJ, kK);
  for (auto _ : state) {
    dmv::workloads::kernels::hdiff_baseline(data);
    benchmark::DoNotOptimize(data.out_field.data());
  }
}

void BM_Hdiff_FusedNPBenchStyle(benchmark::State& state) {
  HdiffData data = make_hdiff_data(kI, kJ, kK);
  for (auto _ : state) {
    dmv::workloads::kernels::hdiff_fused(data);
    benchmark::DoNotOptimize(data.out_field.data());
  }
}

void BM_Hdiff_HandTuned(benchmark::State& state) {
  // The layout change is program-wide (the tool's workflow rewrites the
  // data descriptor): convert once outside the timed region.
  HdiffData canonical = make_hdiff_data(kI, kJ, kK);
  dmv::workloads::kernels::HdiffTunedData data =
      dmv::workloads::kernels::make_hdiff_tuned_data(canonical);
  for (auto _ : state) {
    dmv::workloads::kernels::hdiff_tuned_kernel(data);
    benchmark::DoNotOptimize(data.out_field.data());
  }
}

BENCHMARK(BM_Hdiff_Baseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Hdiff_FusedNPBenchStyle)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Hdiff_HandTuned)->Unit(benchmark::kMillisecond);

double median_ms(void (*kernel)(HdiffData&), int repetitions) {
  HdiffData data = make_hdiff_data(kI, kJ, kK);
  std::vector<double> times;
  for (int r = 0; r < repetitions; ++r) {
    const auto start = std::chrono::steady_clock::now();
    kernel(data);
    const auto stop = std::chrono::steady_clock::now();
    times.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

double median_tuned_ms(int repetitions) {
  HdiffData canonical = make_hdiff_data(kI, kJ, kK);
  dmv::workloads::kernels::HdiffTunedData data =
      dmv::workloads::kernels::make_hdiff_tuned_data(canonical);
  std::vector<double> times;
  for (int r = 0; r < repetitions; ++r) {
    const auto start = std::chrono::steady_clock::now();
    dmv::workloads::kernels::hdiff_tuned_kernel(data);
    const auto stop = std::chrono::steady_clock::now();
    times.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void print_summary() {
  const int repetitions = 5;
  const double baseline =
      median_ms(dmv::workloads::kernels::hdiff_baseline, repetitions);
  const double fused =
      median_ms(dmv::workloads::kernels::hdiff_fused, repetitions);
  const double tuned = median_tuned_ms(repetitions);

  dmv::viz::TextTable table({"Horizontal diffusion", "Time [ms]", "Speedup"});
  char buffer[64];
  auto row = [&](const char* name, double ms) {
    std::snprintf(buffer, sizeof(buffer), "%.2f", ms);
    std::string time = buffer;
    std::snprintf(buffer, sizeof(buffer), "%.1fx", baseline / ms);
    table.add_row({name, time, buffer});
  };
  row("Baseline (NumPy-style passes)", baseline);
  row("Fused stencil (NPBench-best stand-in)", fused);
  row("Hand-tuned via local view", tuned);
  std::printf(
      "\nTable I reproduction (hdiff rows), I=J=256 K=160, median of %d "
      "runs:\n%sPaper shape: baseline slowest; NPBench-best 8.7-24.4x; "
      "hand-tuned 51.2-151.4x (multi-core, compiled; expect smaller "
      "factors on one core).\n",
      repetitions, table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
