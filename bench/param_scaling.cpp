// §IV-D: parametric scaling analysis. The SDFG's metrics are symbolic in
// the input parameters, so "dragging a slider" is a re-evaluation. This
// harness regenerates (a) the per-symbol power-law exponents the analysis
// reports for BERT and hdiff, identifying the dominant parameters, and
// (b) the slider series itself: total movement as one parameter sweeps.

#include <cstdio>

#include "dmv/analysis/analysis.hpp"
#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

namespace analysis = dmv::analysis;

void exponents(const char* name, const dmv::ir::Sdfg& sdfg,
               const dmv::symbolic::SymbolMap& base) {
  std::printf("\n%s: movement scaling exponents at the paper's operating "
              "point\n",
              name);
  dmv::viz::TextTable table({"symbol", "exponent", "interpretation"});
  for (const analysis::SymbolScaling& scaling :
       analysis::movement_scaling(sdfg, base)) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2f", scaling.exponent);
    const char* interpretation =
        scaling.exponent > 1.05
            ? "superlinear - dominant parameter"
            : (scaling.exponent > 0.5 ? "linear" : "weak");
    table.add_row({scaling.symbol, buffer, interpretation});
  }
  std::printf("%s", table.str().c_str());
}

}  // namespace

int main() {
  std::printf("Parametric scaling analysis reproduction (paper §IV-D).\n");

  dmv::ir::Sdfg bert =
      dmv::workloads::bert_encoder(dmv::workloads::BertStage::Baseline);
  exponents("BERT encoder", bert, dmv::workloads::bert_large());

  dmv::ir::Sdfg hdiff =
      dmv::workloads::hdiff(dmv::workloads::HdiffVariant::Baseline);
  exponents("Horizontal diffusion", hdiff, dmv::workloads::hdiff_local());

  // The slider series: sweep SM (sequence length) and watch the total
  // volume respond — the interactive what-if of the configuration panel.
  std::printf("\nSlider sweep: BERT total movement vs sequence length SM\n");
  dmv::symbolic::Expr total = analysis::total_movement_bytes(bert);
  dmv::viz::TextTable sweep({"SM", "logical GB moved"});
  for (std::int64_t sm : {64, 128, 256, 512, 1024, 2048}) {
    dmv::symbolic::SymbolMap params = dmv::workloads::bert_large();
    params["SM"] = sm;
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2f",
                  static_cast<double>(total.evaluate(params)) / 1e9);
    sweep.add_row({std::to_string(sm), buffer});
  }
  std::printf("%s", sweep.str().c_str());
  std::printf(
      "Expected: growth steepens with SM (the SM^2 attention term "
      "overtakes the linear FFN term) — the signal that tells the "
      "engineer SM is the parameter to watch.\n");

  std::printf("\nSlider sweep: hdiff total movement vs K\n");
  dmv::symbolic::Expr hdiff_total = analysis::total_movement_bytes(hdiff);
  dmv::viz::TextTable hdiff_sweep({"K", "logical MB moved"});
  for (std::int64_t k : {5, 10, 20, 40, 80, 160}) {
    dmv::symbolic::SymbolMap params = dmv::workloads::hdiff_full();
    params["K"] = k;
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2f",
                  static_cast<double>(hdiff_total.evaluate(params)) / 1e6);
    hdiff_sweep.add_row({std::to_string(k), buffer});
  }
  std::printf("%s", hdiff_sweep.str().c_str());
  std::printf("Expected: exactly linear in K (doubling K doubles MB).\n");
  return 0;
}
