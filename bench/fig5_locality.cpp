// Fig 5: physical data layouts, reuse distances, and estimated movement.
//   5a — cache-line overlay on the matmul operands (A 9x10, B 10x15,
//        4-byte values, 64-byte lines): selecting A[0,0], B[0,1] and
//        C[8,14] reveals A and C row-major, B column-major.
//   5b — median reuse-distance heatmap (32-byte lines) plus the
//        details-panel histogram for one element, listing cold misses.
//   5c — estimated cache misses and physical data movement for the
//        convolution inputs (64-byte lines, 8-byte values).

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "dmv/sim/sim.hpp"
#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

namespace sim = dmv::sim;
namespace viz = dmv::viz;

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

std::string index_string(const dmv::layout::Index& indices) {
  std::string text = "[";
  for (std::size_t d = 0; d < indices.size(); ++d) {
    text += (d ? "," : "") + std::to_string(indices[d]);
  }
  return text + "]";
}

}  // namespace

int main() {
  std::filesystem::create_directories("dmv_renders");

  // ---- Fig 5a.
  std::printf("Fig 5a: cache-line overlay on matmul (64 B lines).\n");
  dmv::ir::Sdfg mm = dmv::workloads::matmul(/*b_column_major=*/true);
  const dmv::symbolic::SymbolMap params = dmv::workloads::matmul_fig5();
  sim::AccessTrace trace = sim::simulate(mm, params);

  struct Probe {
    const char* container;
    std::vector<std::int64_t> element;
  };
  for (const Probe& probe :
       {Probe{"A", {0, 0}}, Probe{"B", {0, 1}}, Probe{"C", {8, 14}}}) {
    const auto& layout = trace.layout_of(probe.container);
    auto mates =
        dmv::layout::elements_sharing_line(layout, probe.element, 64);
    std::string line;
    for (const auto& mate : mates) line += index_string(mate) + " ";
    std::printf("  %s%s line mates: %s\n", probe.container,
                index_string(probe.element).c_str(), line.c_str());

    viz::TileRenderOptions options;
    for (const auto& mate : mates) {
      options.highlighted.insert(layout.flat_index(mate));
    }
    options.selected = {layout.flat_index(probe.element)};
    write_file(std::string("dmv_renders/fig5a_") + probe.container + ".svg",
               viz::render_tiles_svg(layout, options));
  }
  std::printf(
      "Expected reveal: A and C mates vary in the LAST index (row-major); "
      "B mates vary in the FIRST index (column-major).\n");

  // ---- Fig 5b.
  std::printf("\nFig 5b: median reuse distances (32 B lines).\n");
  sim::StackDistanceResult distances = sim::stack_distances(trace, 32);
  for (const char* name : {"A", "B"}) {
    const int container = trace.container_id(name);
    sim::ElementDistanceStats stats =
        sim::element_distance_stats(trace, distances, container);
    std::vector<double> heat(stats.median.size());
    std::vector<double> finite;
    for (std::int64_t d : stats.median) {
      if (d != sim::kInfiniteDistance) finite.push_back(double(d));
    }
    viz::HeatmapScale scale =
        viz::HeatmapScale::fit(finite, viz::ScalingPolicy::MedianCentered);
    for (std::size_t e = 0; e < heat.size(); ++e) {
      heat[e] = stats.median[e] == sim::kInfiniteDistance
                    ? 1.0
                    : scale.normalize(double(stats.median[e]));
    }
    viz::TileRenderOptions options;
    options.heat = &heat;
    write_file(std::string("dmv_renders/fig5b_") + name + "_median.svg",
               viz::render_tiles_svg(trace.layouts[container], options));
  }
  // Details panel for A[3,6] (the paper's probe).
  const int a = trace.container_id("A");
  const std::int64_t probe_flat =
      trace.layouts[a].flat_index(std::vector<std::int64_t>{3, 6});
  sim::DistanceHistogram histogram =
      sim::distance_histogram(trace, distances, a, probe_flat);
  std::printf(
      "  A[3,6]: %zu finite-distance accesses, %lld cold miss(es); "
      "min=%lld max=%lld\n",
      histogram.distances.size(),
      static_cast<long long>(histogram.cold_misses),
      histogram.distances.empty()
          ? 0LL
          : static_cast<long long>(histogram.distances.front()),
      histogram.distances.empty()
          ? 0LL
          : static_cast<long long>(histogram.distances.back()));
  viz::HistogramRenderOptions histogram_options;
  histogram_options.title = "A[3,6] reuse distances";
  histogram_options.cold_misses = histogram.cold_misses;
  write_file("dmv_renders/fig5b_histogram.svg",
             viz::render_histogram_svg(histogram.distances,
                                       histogram_options));

  // ---- Fig 5c.
  std::printf(
      "\nFig 5c: estimated misses and physical movement, convolution "
      "(64 B lines, 8 B values, threshold 32 lines).\n");
  dmv::ir::Sdfg conv = dmv::workloads::conv2d();
  sim::AccessTrace conv_trace =
      sim::simulate(conv, dmv::workloads::conv2d_fig4());
  sim::StackDistanceResult conv_distances =
      sim::stack_distances(conv_trace, 64);
  sim::MissReport report =
      sim::classify_misses(conv_trace, conv_distances, 32);
  sim::MovementEstimate movement =
      sim::physical_movement(conv_trace, report, 64);
  viz::TextTable table(
      {"container", "accesses", "cold", "capacity", "est. bytes moved"});
  for (std::size_t c = 0; c < conv_trace.containers.size(); ++c) {
    const sim::MissStats& stats = report.per_container[c];
    table.add_row({conv_trace.containers[c],
                   std::to_string(stats.accesses()),
                   std::to_string(stats.cold),
                   std::to_string(stats.capacity),
                   std::to_string(movement.bytes_per_container[c])});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "Expected shape: logical access counts far exceed physical bytes "
      "moved; weights (heavily reused) move least per access.\n");

  // Overlay: per-element predicted misses on the input container.
  const int input = conv_trace.container_id("input");
  std::vector<std::int64_t> misses = report.element_misses[input];
  std::vector<double> values(misses.begin(), misses.end());
  viz::HeatmapScale scale =
      viz::HeatmapScale::fit(values, viz::ScalingPolicy::Histogram);
  std::vector<double> heat(values.size());
  for (std::size_t e = 0; e < values.size(); ++e) {
    heat[e] = scale.normalize(values[e]);
  }
  viz::TileRenderOptions options;
  options.heat = &heat;
  options.counts = &misses;
  options.tile_size = 16;
  write_file("dmv_renders/fig5c_input_misses.svg",
             viz::render_tiles_svg(conv_trace.layouts[input], options));
  std::printf("SVG renders written to dmv_renders/fig5*.svg\n");
  return 0;
}
