// Fig 3: the parameterized view of the outer product C = A (x) B for
// A in R^3, B in R^4, with the loop sliders set to i=1, j=2.
//
// Every interactive element becomes a pure function here: binding the
// sliders selects one iteration; the elements that iteration accesses
// are highlighted (green in the paper). The harness prints the
// highlighted coordinates and writes the tile-grid SVGs the figure shows.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "dmv/sim/sim.hpp"
#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

}  // namespace

int main() {
  namespace sim = dmv::sim;
  std::printf("Fig 3 reproduction: parameterized outer product, i=1 j=2.\n");

  dmv::ir::Sdfg sdfg = dmv::workloads::outer_product();
  const dmv::symbolic::SymbolMap params =
      dmv::workloads::outer_product_fig3();
  sim::AccessTrace trace = sim::simulate(sdfg, params);

  // The slider binding (i=1, j=2) selects execution i*N+j = 1*4+2 = 6 in
  // lexicographic map order; collect exactly its accesses per container.
  const std::int64_t selected_execution = 1 * 4 + 2;
  dmv::viz::TextTable table({"container", "element", "access"});
  std::map<int, std::set<std::int64_t>> highlighted;
  for (const sim::AccessEvent& event : trace.events) {
    if (event.execution != selected_execution) continue;
    highlighted[event.container].insert(event.flat);
    const auto indices =
        trace.layouts[event.container].unflatten(event.flat);
    std::string coordinates = "[";
    for (std::size_t d = 0; d < indices.size(); ++d) {
      coordinates += (d ? ", " : "") + std::to_string(indices[d]);
    }
    coordinates += "]";
    table.add_row({trace.containers[event.container], coordinates,
                   event.is_write ? "write" : "read"});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "Expected per the figure: A[1], B[2] read; C[1,2] written.\n");

  std::filesystem::create_directories("dmv_renders");
  for (std::size_t c = 0; c < trace.layouts.size(); ++c) {
    dmv::viz::TileRenderOptions options;
    auto it = highlighted.find(static_cast<int>(c));
    if (it != highlighted.end()) options.highlighted = it->second;
    write_file("dmv_renders/fig3_" + trace.containers[c] + ".svg",
               dmv::viz::render_tiles_svg(trace.layouts[c], options));
  }
  write_file("dmv_renders/fig3_graph.svg",
             dmv::viz::render_state_svg(sdfg.states()[0]));
  std::printf("SVG renders written to dmv_renders/fig3_*.svg\n");
  return 0;
}
