// Serving-layer load generator: N concurrent clients dragging the same
// program against one dmv::serve::Server, measuring per-step latency
// (p50/p99), cross-session cache hit rate, and request coalescing.
//
// The run doubles as a correctness gate: every step response checksum
// must equal a serial single-session Session driving the same drag
// sequence — the serving determinism contract at each thread count.
// A violated gate (or a zero cross-session hit rate, or coalescing
// that never collapses anything) exits nonzero so CI fails.
//
// Results are MERGED into BENCH_sweep.json as a "serve" section:
// sweep_throughput writes the file first in CI; this binary replaces
// any existing "serve" section (idempotent reruns) or creates the file
// if it runs alone.
//
// Usage: serve_load [--smoke]
//   --smoke   gates only, no BENCH_sweep.json update.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dmv/par/par.hpp"
#include "dmv/serve/server.hpp"
#include "dmv/session/session.hpp"
#include "dmv/util/json.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using dmv::json::Value;

constexpr int kClients = 8;

double ms_between(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

/// The drag: K swept up, partially back (revisits), then further — the
/// realistic slider profile that exercises cold, warm, and delta paths.
std::vector<std::int64_t> drag_values() {
  return {6, 7, 8, 9, 10, 9, 8, 11, 12, 10, 7, 13};
}

std::string open_request(int client) {
  return "{\"id\":1,\"method\":\"open_program\",\"params\":{\"session\":"
         "\"client" +
         std::to_string(client) +
         "\",\"workload\":\"hdiff\",\"binding\":{\"I\":16,\"J\":16,\"K\":5}}}";
}

std::string step_request(int client, std::int64_t value) {
  return "{\"id\":2,\"method\":\"step\",\"params\":{\"session\":\"client" +
         std::to_string(client) + "\",\"symbol\":\"K\",\"value\":" +
         std::to_string(value) + "}}";
}

std::vector<std::string> reference_checksums(
    const std::vector<std::int64_t>& values) {
  dmv::session::SessionConfig config;
  config.prefetch = false;
  dmv::session::Session session(
      dmv::workloads::hdiff(dmv::workloads::HdiffVariant::Baseline),
      std::move(config));
  session.set_binding({{"I", 16}, {"J", 16}, {"K", 5}});
  std::vector<std::string> checksums;
  for (const std::int64_t value : values) {
    session.set_symbol("K", value);
    checksums.push_back(
        std::to_string(dmv::serve::result_checksum(*session.metrics())));
  }
  return checksums;
}

struct LoadResult {
  int threads = 0;
  std::int64_t requests = 0;
  std::int64_t coalesced = 0;
  std::int64_t shared_steps = 0;  ///< Steps served by the shared tier.
  std::int64_t compute_steps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double wall_ms = 0;
  double shared_hit_rate = 0;
  bool checksums_identical = false;
};

LoadResult run_load(int threads) {
  dmv::par::ThreadScope scope(threads);
  const std::vector<std::int64_t> values = drag_values();
  const std::vector<std::string> reference = reference_checksums(values);

  dmv::serve::ServerConfig config;
  config.session_defaults.prefetch = false;  // Exact served_by accounting.
  dmv::serve::Server server(config);
  for (int c = 0; c < kClients; ++c) server.handle(open_request(c));

  std::mutex merge_mutex;
  std::vector<double> latencies;
  LoadResult load;
  load.threads = threads;
  load.checksums_identical = true;

  const Clock::time_point wall_begin = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<double> local_latencies;
      std::int64_t shared_steps = 0, compute_steps = 0;
      bool identical = true;
      for (std::size_t i = 0; i < values.size(); ++i) {
        const Clock::time_point begin = Clock::now();
        const std::string line = server.handle(step_request(c, values[i]));
        local_latencies.push_back(ms_between(begin, Clock::now()));
        const Value response = dmv::json::parse(line);
        if (!response.has("result")) {
          identical = false;
          continue;
        }
        const Value& result = response.at("result");
        if (result.at("checksum").as_string() != reference[i]) {
          identical = false;
        }
        const std::string& served_by = result.at("served_by").as_string();
        if (served_by == "shared_cache") ++shared_steps;
        if (served_by == "compute") ++compute_steps;
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      latencies.insert(latencies.end(), local_latencies.begin(),
                       local_latencies.end());
      load.shared_steps += shared_steps;
      load.compute_steps += compute_steps;
      if (!identical) load.checksums_identical = false;
    });
  }
  for (std::thread& client : clients) client.join();
  load.wall_ms = ms_between(wall_begin, Clock::now());

  std::sort(latencies.begin(), latencies.end());
  load.requests = static_cast<std::int64_t>(latencies.size());
  load.p50_ms = latencies[latencies.size() / 2];
  load.p99_ms = latencies[(latencies.size() * 99) / 100];
  load.coalesced = server.stats().coalesced;
  load.shared_hit_rate =
      static_cast<double>(load.shared_steps) /
      static_cast<double>(load.requests);
  return load;
}

/// Replaces (or appends) the "serve" section of BENCH_sweep.json
/// without disturbing sweep_throughput's sections.
void merge_into_sweep_json(const std::string& serve_section) {
  const char* path = "BENCH_sweep.json";
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      existing = buffer.str();
    }
  }
  const std::string marker = ",\n  \"serve\": {";
  if (const std::size_t at = existing.find(marker);
      at != std::string::npos) {
    existing.resize(at);  // Idempotent rerun: drop the old section.
  } else if (const std::size_t brace = existing.rfind('}');
             brace != std::string::npos) {
    existing.resize(brace);
    while (!existing.empty() &&
           (existing.back() == '\n' || existing.back() == ' ')) {
      existing.pop_back();
    }
  } else {
    existing = "{\n  \"benchmark\": \"serve_load\"";
  }
  std::ofstream out(path);
  out << existing << ",\n  \"serve\": {" << serve_section << "\n  }\n}\n";
}

std::string format_run(const LoadResult& load) {
  std::ostringstream out;
  out << "\n    {\n"
      << "      \"threads\": " << load.threads << ",\n"
      << "      \"clients\": " << kClients << ",\n"
      << "      \"requests\": " << load.requests << ",\n"
      << "      \"step_p50_ms\": " << load.p50_ms << ",\n"
      << "      \"step_p99_ms\": " << load.p99_ms << ",\n"
      << "      \"wall_ms\": " << load.wall_ms << ",\n"
      << "      \"compute_steps\": " << load.compute_steps << ",\n"
      << "      \"shared_cache_steps\": " << load.shared_steps << ",\n"
      << "      \"shared_hit_rate\": " << load.shared_hit_rate << ",\n"
      << "      \"coalesced\": " << load.coalesced << ",\n"
      << "      \"checksums_identical\": "
      << (load.checksums_identical ? "true" : "false") << "\n"
      << "    }";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const int hw = dmv::par::hardware_threads();
  std::vector<LoadResult> runs;
  runs.push_back(run_load(1));
  if (hw > 1) runs.push_back(run_load(std::min(8, hw)));

  bool gates_ok = true;
  for (const LoadResult& load : runs) {
    std::printf(
        "serve_load threads=%d clients=%d requests=%lld p50=%.3fms "
        "p99=%.3fms shared_hit_rate=%.3f compute=%lld coalesced=%lld "
        "identical=%s\n",
        load.threads, kClients, static_cast<long long>(load.requests),
        load.p50_ms, load.p99_ms, load.shared_hit_rate,
        static_cast<long long>(load.compute_steps),
        static_cast<long long>(load.coalesced),
        load.checksums_identical ? "yes" : "NO");
    if (!load.checksums_identical) {
      std::fprintf(stderr,
                   "serve_load: GATE FAILED (threads=%d): server checksums "
                   "diverge from the single-session reference\n",
                   load.threads);
      gates_ok = false;
    }
    if (load.shared_steps <= 0) {
      std::fprintf(stderr,
                   "serve_load: GATE FAILED (threads=%d): cross-session "
                   "cache hit rate is zero\n",
                   load.threads);
      gates_ok = false;
    }
    // Coalescing + caching must collapse work: with 8 clients on one
    // drag sequence, simulations must stay below total requests.
    if (load.compute_steps >= load.requests) {
      std::fprintf(stderr,
                   "serve_load: GATE FAILED (threads=%d): every request "
                   "simulated — no coalescing or sharing happened\n",
                   load.threads);
      gates_ok = false;
    }
  }
  if (!gates_ok) return 1;
  if (smoke) return 0;

  std::ostringstream section;
  section << "\n  \"benchmark\": \"serve_load\",\n"
          << "  \"workload\": \"hdiff I=16 J=16, K drag x"
          << drag_values().size() << "\",\n  \"runs\": [";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (r) section << ",";
    section << format_run(runs[r]);
  }
  section << "\n  ]";
  // The section goes under the "serve" key; re-indent is already baked
  // into the strings above.
  merge_into_sweep_json(section.str());
  std::printf("serve_load: BENCH_sweep.json updated\n");
  return 0;
}
