// Fig 1: the tool's main interface — the global view on a program graph
// with in-situ overlays, plus the navigation aids (minimap, outline) and
// the details panel. This harness produces each UI element as a
// standalone artifact for the BERT encoder, the program shown in the
// screenshot's role.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "dmv/analysis/analysis.hpp"
#include "dmv/viz/query.hpp"
#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

int main() {
  using namespace dmv;
  std::filesystem::create_directories("dmv_renders");
  ir::Sdfg sdfg = workloads::bert_encoder(workloads::BertStage::Baseline);
  const symbolic::SymbolMap params = workloads::bert_large();

  // Main canvas: movement heatmap + intensity heatmap overlays.
  auto volumes = analysis::edge_volumes(sdfg);
  std::vector<double> edge_values;
  for (const auto& volume : volumes) {
    edge_values.push_back(
        static_cast<double>(volume.bytes.evaluate(params)));
  }
  viz::HeatmapScale edge_scale = viz::HeatmapScale::fit(
      edge_values, viz::ScalingPolicy::MeanCentered);
  auto intensities = analysis::map_intensities(sdfg, params);
  std::vector<double> node_values;
  for (const auto& intensity : intensities) {
    node_values.push_back(intensity.intensity);
  }
  viz::HeatmapScale node_scale = viz::HeatmapScale::fit(
      node_values, viz::ScalingPolicy::MedianCentered);

  viz::GraphRenderOptions options;
  for (std::size_t i = 0; i < volumes.size(); ++i) {
    options.edge_heat[volumes[i].ref.edge_index] =
        edge_scale.normalize(edge_values[i]);
  }
  for (std::size_t i = 0; i < intensities.size(); ++i) {
    options.node_heat[intensities[i].ref.node] =
        node_scale.normalize(node_values[i]);
  }
  std::ofstream("dmv_renders/fig1_canvas.svg")
      << render_state_svg(sdfg.states()[0], options);

  // Minimap (top-right corner in the screenshot).
  std::ofstream("dmv_renders/fig1_minimap.svg")
      << viz::render_minimap_svg(sdfg.states()[0], 0, 0, 900, 500);

  // Outline overview (the hierarchical navigation list).
  const std::string program_outline = viz::outline(sdfg);
  std::ofstream("dmv_renders/fig1_outline.txt") << program_outline;
  std::printf("Fig 1 reproduction: interface elements for the BERT "
              "encoder.\n\nOutline (%zu bytes), first lines:\n%.400s...\n",
              program_outline.size(), program_outline.c_str());

  // Details panel for a clicked element (the scores map).
  auto hits = viz::search(sdfg, "scores");
  if (!hits.empty()) {
    std::printf("\nDetails panel for search hit 'scores':\n%s",
                viz::details_panel(sdfg, hits[0].state_index, hits[0].node)
                    .c_str());
  }

  // Collapsed variant: fold every map (the §IV-A legibility feature).
  for (ir::Node& node : sdfg.states()[0].mutable_nodes()) {
    if (node.kind == ir::NodeKind::MapEntry) node.map.collapsed = true;
  }
  std::ofstream("dmv_renders/fig1_collapsed.svg")
      << render_state_svg(sdfg.states()[0], viz::GraphRenderOptions{});
  std::printf(
      "\nArtifacts: fig1_canvas.svg (heatmap overlays), fig1_minimap.svg, "
      "fig1_outline.txt, fig1_collapsed.svg in dmv_renders/.\n");
  return 0;
}
