// Fig 4: multi-dimensional containers and access-pattern visualizations.
//   4a — the 4-D convolution weight tensor rendered with the alternating
//        horizontal/vertical nesting of §V-B.
//   4b — flattened-time access-count heatmap of a 3-channel 9x9 ->
//        2-channel 6x6 convolution (no padding).
//   4c — related accesses to A and B for C[2,0..2] in the outer product.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "dmv/sim/sim.hpp"
#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

namespace sim = dmv::sim;
namespace viz = dmv::viz;

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

std::vector<double> normalized(const std::vector<std::int64_t>& counts,
                               viz::ScalingPolicy policy) {
  std::vector<double> values(counts.begin(), counts.end());
  viz::HeatmapScale scale = viz::HeatmapScale::fit(values, policy);
  std::vector<double> heat(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    heat[i] = scale.normalize(values[i]);
  }
  return heat;
}

}  // namespace

int main() {
  std::filesystem::create_directories("dmv_renders");

  // ---- Fig 4a: the 4-D weight container.
  std::printf("Fig 4a: 4-D weight tensor w[Cout, Cin, Ky, Kx] tile view.\n");
  dmv::ir::Sdfg conv = dmv::workloads::conv2d();
  const dmv::symbolic::SymbolMap params = dmv::workloads::conv2d_fig4();
  sim::AccessTrace trace = sim::simulate(conv, params);
  const int weights = trace.container_id("weights");
  write_file("dmv_renders/fig4a_weights.svg",
             viz::render_tiles_svg(trace.layouts[weights]));

  // ---- Fig 4b: flattened access counts of the convolution.
  std::printf(
      "Fig 4b: access-count distribution, 3-channel 9x9 -> 2-channel "
      "6x6.\n");
  sim::AccessCounts counts = sim::count_accesses(trace);
  const int input = trace.container_id("input");
  const int output = trace.container_id("output");
  std::vector<std::int64_t> input_counts = counts.total(input);

  // The figure's tooltips: interior elements are accessed most; the
  // paper superimposes counts like 32 (interior) vs 2 (corner).
  const auto& layout = trace.layouts[input];
  auto count_at = [&](std::int64_t ci, std::int64_t y, std::int64_t x) {
    return input_counts[layout.flat_index(
        std::vector<std::int64_t>{ci, y, x})];
  };
  viz::TextTable tooltips({"element", "accesses"});
  tooltips.add_row({"input[0,0,0] (corner)", std::to_string(count_at(0, 0, 0))});
  tooltips.add_row({"input[0,0,4] (edge)", std::to_string(count_at(0, 0, 4))});
  tooltips.add_row(
      {"input[0,4,4] (interior)", std::to_string(count_at(0, 4, 4))});
  std::printf("%s", tooltips.str().c_str());
  std::printf(
      "Expected shape: interior >> edge > corner; every output element "
      "written Cin*Ky*Kx = 48 times.\n");

  std::vector<double> heat =
      normalized(input_counts, viz::ScalingPolicy::MedianCentered);
  viz::TileRenderOptions options;
  options.heat = &heat;
  options.counts = &input_counts;
  options.tile_size = 16;
  write_file("dmv_renders/fig4b_input_counts.svg",
             viz::render_tiles_svg(trace.layouts[input], options));
  // ASCII slice of channel 0 for terminal inspection.
  std::printf("input channel 0 heat (ASCII):\n%s",
              viz::ascii_heatmap(trace.layouts[input], heat, {0}).c_str());
  std::vector<std::int64_t> output_counts = counts.total(output);
  std::printf("output[0,0,0] accesses: %lld (expected 48)\n",
              static_cast<long long>(output_counts[0]));

  // ---- Fig 4c: related accesses in the outer product.
  std::printf(
      "\nFig 4c: related accesses for C[2,0], C[2,1], C[2,2] in the outer "
      "product.\n");
  dmv::ir::Sdfg outer = dmv::workloads::outer_product();
  sim::AccessTrace outer_trace =
      sim::simulate(outer, dmv::workloads::outer_product_fig3());
  const int a = outer_trace.container_id("A");
  const int b = outer_trace.container_id("B");
  const int c = outer_trace.container_id("C");
  const auto& c_layout = outer_trace.layouts[c];
  sim::Selection selection{
      c,
      {c_layout.flat_index(std::vector<std::int64_t>{2, 0}),
       c_layout.flat_index(std::vector<std::int64_t>{2, 1}),
       c_layout.flat_index(std::vector<std::int64_t>{2, 2})}};
  sim::AccessCounts related =
      sim::related_accesses(outer_trace, {selection});
  viz::TextTable related_table({"element", "related accesses"});
  for (std::int64_t e = 0; e < 3; ++e) {
    related_table.add_row(
        {"A[" + std::to_string(e) + "]", std::to_string(related.reads[a][e])});
  }
  for (std::int64_t e = 0; e < 4; ++e) {
    related_table.add_row(
        {"B[" + std::to_string(e) + "]", std::to_string(related.reads[b][e])});
  }
  std::printf("%s", related_table.str().c_str());
  std::printf(
      "Expected: A[2] stacks to 3 (all three selections), B[0..2] 1 each, "
      "B[3] 0.\n");

  std::vector<std::int64_t> a_related = related.total(a);
  std::vector<double> a_heat =
      normalized(a_related, viz::ScalingPolicy::Histogram);
  viz::TileRenderOptions a_options;
  a_options.heat = &a_heat;
  a_options.counts = &a_related;
  write_file("dmv_renders/fig4c_A_related.svg",
             viz::render_tiles_svg(outer_trace.layouts[a], a_options));
  std::printf("SVG renders written to dmv_renders/fig4*.svg\n");
  return 0;
}
