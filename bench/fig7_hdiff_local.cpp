// Fig 7: the local view of horizontal diffusion through the tuning
// process. The paper shows the estimated cache misses and physical data
// movement shrinking with each optimization step (parameterized at
// I=J=8, K=5 — a 1/32-scale version of the production size — 64-byte
// lines, 8-byte values).

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "dmv/sim/sim.hpp"
#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

namespace sim = dmv::sim;
using dmv::workloads::HdiffVariant;

const char* variant_name(HdiffVariant variant) {
  switch (variant) {
    case HdiffVariant::Baseline:
      return "baseline [I+4,J+4,K]";
    case HdiffVariant::Reshaped:
      return "reshaped [K,I+4,J+4]";
    case HdiffVariant::Reordered:
      return "+ k outermost";
    case HdiffVariant::Padded:
      return "+ padded rows";
  }
  return "?";
}

}  // namespace

int main() {
  std::filesystem::create_directories("dmv_renders");
  const dmv::symbolic::SymbolMap params = dmv::workloads::hdiff_local();
  const int line_size = 64;
  const std::int64_t threshold_lines = 8;  // A scaled L1 for the 1/32 sim.

  std::printf(
      "Fig 7 reproduction: hdiff local view, I=J=8 K=5, %d B lines, "
      "capacity threshold %lld lines.\n\n",
      line_size, static_cast<long long>(threshold_lines));

  dmv::viz::TextTable table({"stage", "accesses", "cold", "capacity",
                             "total misses", "est. bytes moved",
                             "in_field misses"});
  for (HdiffVariant variant :
       {HdiffVariant::Baseline, HdiffVariant::Reshaped,
        HdiffVariant::Reordered, HdiffVariant::Padded}) {
    dmv::ir::Sdfg sdfg = dmv::workloads::hdiff(variant);
    sim::AccessTrace trace = sim::simulate(sdfg, params);
    sim::StackDistanceResult distances =
        sim::stack_distances(trace, line_size);
    sim::MissReport report =
        sim::classify_misses(trace, distances, threshold_lines);
    sim::MovementEstimate movement =
        sim::physical_movement(trace, report, line_size);
    const int in_field = trace.container_id("in_field");
    table.add_row({variant_name(variant),
                   std::to_string(report.total.accesses()),
                   std::to_string(report.total.cold),
                   std::to_string(report.total.capacity),
                   std::to_string(report.total.misses()),
                   std::to_string(movement.total_bytes),
                   std::to_string(
                       report.per_container[in_field].misses())});

    // The in-situ overlay of the figure: per-element predicted misses on
    // in_field.
    std::vector<std::int64_t> misses = report.element_misses[in_field];
    std::vector<double> values(misses.begin(), misses.end());
    dmv::viz::HeatmapScale scale = dmv::viz::HeatmapScale::fit(
        values, dmv::viz::ScalingPolicy::MedianCentered);
    std::vector<double> heat(values.size());
    for (std::size_t e = 0; e < values.size(); ++e) {
      heat[e] = scale.normalize(values[e]);
    }
    dmv::viz::TileRenderOptions options;
    options.heat = &heat;
    options.counts = &misses;
    options.tile_size = 14;
    std::ofstream out("dmv_renders/fig7_misses_stage" +
                      std::to_string(static_cast<int>(variant)) + ".svg");
    out << render_tiles_svg(trace.layouts[in_field], options);
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nExpected shape (paper): misses and bytes drop with the reshape "
      "and again with the loop reorder. The padding step targets spatial "
      "locality, not the fully-associative miss count — see "
      "fig8_hdiff_steps for its metrics.\n"
      "SVG renders written to dmv_renders/fig7_*.svg\n");
  return 0;
}
