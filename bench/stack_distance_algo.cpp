// Algorithmic ablation: the O(log n)-per-access Fenwick formulation of
// Olken's stack-distance algorithm vs the naive O(n) LRU-stack scan.
// The paper's interactivity claim ("reducing the wait time for
// performance data ... to a fraction of a second") depends on the
// analysis pipeline staying fast as the parameterized sizes grow; this
// benchmark quantifies the asymptotic gap.

#include <benchmark/benchmark.h>

#include <random>

#include "dmv/sim/sim.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

namespace sim = dmv::sim;

sim::AccessTrace random_trace(std::int64_t elements, std::size_t length) {
  sim::AccessTrace trace;
  dmv::layout::ConcreteLayout layout;
  layout.name = "A";
  layout.shape = {elements};
  layout.strides = {1};
  layout.element_size = 8;
  trace.containers = {"A"};
  trace.layouts = {layout};
  std::mt19937 rng(12345);
  std::uniform_int_distribution<std::int64_t> element(0, elements - 1);
  trace.events.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    sim::AccessEvent event;
    event.container = 0;
    event.flat = element(rng);
    event.timestep = static_cast<std::int64_t>(i);
    trace.events.push_back(event);
  }
  return trace;
}

void BM_StackDistance_Fenwick(benchmark::State& state) {
  sim::AccessTrace trace =
      random_trace(state.range(0) / 4, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::stack_distances(trace, 64));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_StackDistance_Naive(benchmark::State& state) {
  sim::AccessTrace trace =
      random_trace(state.range(0) / 4, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::stack_distances_naive(trace, 64));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_StackDistance_Hdiff(benchmark::State& state) {
  // The real pipeline cost at increasing parameterized sizes.
  const std::int64_t scale = state.range(0);
  dmv::ir::Sdfg sdfg =
      dmv::workloads::hdiff(dmv::workloads::HdiffVariant::Baseline);
  dmv::symbolic::SymbolMap params{
      {"I", scale}, {"J", scale}, {"K", std::max<std::int64_t>(2, scale / 2)}};
  sim::AccessTrace trace = sim::simulate(sdfg, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::stack_distances(trace, 64));
  }
  state.SetLabel(std::to_string(trace.events.size()) + " events");
}

void BM_SimulatePipeline_HdiffLocal(benchmark::State& state) {
  // End-to-end local-view latency at the paper's 1/32 parameters: this
  // is the "fraction of a second" interactivity budget.
  dmv::ir::Sdfg sdfg =
      dmv::workloads::hdiff(dmv::workloads::HdiffVariant::Baseline);
  const dmv::symbolic::SymbolMap params = dmv::workloads::hdiff_local();
  for (auto _ : state) {
    sim::AccessTrace trace = sim::simulate(sdfg, params);
    sim::StackDistanceResult distances = sim::stack_distances(trace, 64);
    sim::MissReport report = sim::classify_misses(trace, distances, 8);
    benchmark::DoNotOptimize(
        sim::physical_movement(trace, report, 64).total_bytes);
  }
}

}  // namespace

BENCHMARK(BM_StackDistance_Fenwick)->Range(1 << 10, 1 << 17);
BENCHMARK(BM_StackDistance_Naive)->Range(1 << 10, 1 << 15);
BENCHMARK(BM_StackDistance_Hdiff)->Arg(8)->Arg(16)->Arg(24);
BENCHMARK(BM_SimulatePipeline_HdiffLocal)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
