// Fig 8: the three individual hdiff tuning steps, each diagnosed with a
// different overlay.
//   8a — the 13-point neighborhood's memory spread before/after the
//        [I+4,J+4,K] -> [K,I+4,J+4] reshape: accesses move much closer
//        together (fewer distinct cache lines per iteration).
//   8b — the innermost loop's address stride before/after moving k
//        outermost: consecutive iterations become contiguous.
//   8c — line wrap-around before/after row padding: rows stop sharing
//        cache lines and same-iteration line utilization rises.

#include <cstdio>
#include <cstdlib>
#include <set>

#include "dmv/sim/sim.hpp"
#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

namespace sim = dmv::sim;
using dmv::workloads::HdiffVariant;

// Byte span and distinct 64-byte lines of the first iteration's
// in_field neighborhood.
struct NeighborhoodStats {
  std::int64_t span_bytes = 0;
  std::int64_t distinct_lines = 0;
};

NeighborhoodStats neighborhood(const sim::AccessTrace& trace) {
  const int in_field = trace.container_id("in_field");
  const auto& layout = trace.layouts[in_field];
  std::int64_t lo = INT64_MAX, hi = INT64_MIN;
  std::set<std::int64_t> lines;
  for (const sim::AccessEvent& event : trace.events) {
    if (event.execution != 0 || event.container != in_field) continue;
    const std::int64_t address =
        layout.byte_address(layout.unflatten(event.flat));
    lo = std::min(lo, address);
    hi = std::max(hi, address);
    lines.insert(address / 64);
  }
  return {hi - lo + 8, static_cast<std::int64_t>(lines.size())};
}

// Median absolute address delta of the CENTER point (i2j2 offset) between
// consecutive innermost-loop iterations.
std::int64_t innermost_stride(const sim::AccessTrace& trace) {
  const int in_field = trace.container_id("in_field");
  const auto& layout = trace.layouts[in_field];
  // The center read is the one matching out's write index shifted by
  // (+2, +2); simply track the LAST in_field read of each execution
  // (deterministic order) across the first few executions.
  std::vector<std::int64_t> addresses;
  std::int64_t previous_execution = -1;
  for (const sim::AccessEvent& event : trace.events) {
    if (event.container != in_field) continue;
    if (event.execution >= 8) break;
    if (event.execution != previous_execution) {
      previous_execution = event.execution;
      addresses.push_back(
          layout.byte_address(layout.unflatten(event.flat)));
    }
  }
  std::vector<std::int64_t> deltas;
  for (std::size_t i = 1; i < addresses.size(); ++i) {
    deltas.push_back(std::llabs(addresses[i] - addresses[i - 1]));
  }
  std::sort(deltas.begin(), deltas.end());
  return deltas.empty() ? 0 : deltas[deltas.size() / 2];
}

}  // namespace

int main() {
  const dmv::symbolic::SymbolMap params = dmv::workloads::hdiff_local();
  std::printf("Fig 8 reproduction: hdiff tuning step diagnostics.\n\n");

  // ---- 8a: reshape.
  {
    sim::AccessTrace before = sim::simulate(
        dmv::workloads::hdiff(HdiffVariant::Baseline), params);
    sim::AccessTrace after = sim::simulate(
        dmv::workloads::hdiff(HdiffVariant::Reshaped), params);
    NeighborhoodStats b = neighborhood(before);
    NeighborhoodStats a = neighborhood(after);
    std::printf(
        "Fig 8a (reshape): 13-point neighborhood spread, first "
        "iteration\n");
    dmv::viz::TextTable table(
        {"layout", "byte span", "distinct 64B lines"});
    table.add_row({"[I+4,J+4,K]", std::to_string(b.span_bytes),
                   std::to_string(b.distinct_lines)});
    table.add_row({"[K,I+4,J+4]", std::to_string(a.span_bytes),
                   std::to_string(a.distinct_lines)});
    std::printf("%s", table.str().c_str());
    std::printf(
        "Expected: the reshape shrinks the span and the line count (the "
        "figure's 'accesses now much closer together').\n\n");
  }

  // ---- 8b: loop reorder.
  {
    sim::AccessTrace before = sim::simulate(
        dmv::workloads::hdiff(HdiffVariant::Reshaped), params);
    sim::AccessTrace after = sim::simulate(
        dmv::workloads::hdiff(HdiffVariant::Reordered), params);
    std::printf(
        "Fig 8b (loop reorder): innermost-loop address stride of the "
        "stencil center\n");
    dmv::viz::TextTable table({"loop order", "median stride [bytes]"});
    table.add_row(
        {"(i, j, k) innermost k", std::to_string(innermost_stride(before))});
    table.add_row(
        {"(k, i, j) innermost j", std::to_string(innermost_stride(after))});
    std::printf("%s", table.str().c_str());
    std::printf(
        "Expected: after the reorder the innermost loop walks the "
        "contiguous dimension (stride = 8 bytes = one element).\n\n");
  }

  // ---- 8c: padding.
  {
    dmv::ir::Sdfg unpadded = dmv::workloads::hdiff(HdiffVariant::Reordered);
    dmv::ir::Sdfg padded = dmv::workloads::hdiff(HdiffVariant::Padded);
    auto unpadded_layout = dmv::layout::ConcreteLayout::from(
        unpadded.array("in_field"), params);
    auto padded_layout =
        dmv::layout::ConcreteLayout::from(padded.array("in_field"), params);
    const auto wrapped_before =
        dmv::layout::rows_with_line_wraparound(unpadded_layout, 2, 64);
    const auto wrapped_after =
        dmv::layout::rows_with_line_wraparound(padded_layout, 2, 64);

    sim::AccessTrace before = sim::simulate(unpadded, params);
    sim::AccessTrace after = sim::simulate(padded, params);
    sim::IterationLineStats stats_before = sim::iteration_line_stats(
        before, before.container_id("in_field"), 64);
    sim::IterationLineStats stats_after = sim::iteration_line_stats(
        after, after.container_id("in_field"), 64);

    std::printf("Fig 8c (row padding): cache-line alignment\n");
    dmv::viz::TextTable table({"layout", "rows wrapping a line",
                               "lines/iteration",
                               "same-iteration line utilization"});
    char b1[32], b2[32], a1[32], a2[32];
    std::snprintf(b1, sizeof(b1), "%.2f", stats_before.mean_lines_per_execution);
    std::snprintf(b2, sizeof(b2), "%.3f", stats_before.mean_line_utilization);
    std::snprintf(a1, sizeof(a1), "%.2f", stats_after.mean_lines_per_execution);
    std::snprintf(a2, sizeof(a2), "%.3f", stats_after.mean_line_utilization);
    table.add_row({"unpadded rows (J+4=12 elems)",
                   std::to_string(wrapped_before.size()), b1, b2});
    table.add_row({"padded rows (16 elems)",
                   std::to_string(wrapped_after.size()), a1, a2});
    std::printf("%s", table.str().c_str());
    std::printf(
        "Expected: padding eliminates all wrap-around rows and raises "
        "same-iteration utilization (the figure's green cache-line "
        "highlight aligning with the rows).\n");
  }
  return 0;
}
