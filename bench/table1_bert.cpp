// Table I (BERT rows): runtime of the encoder layer at three fusion
// stages. The paper measured a NumPy+MKL implementation on three
// machines; this harness measures the equivalent native C++ program
// versions (maximally materialized, elementwise-fused, row-fused) on the
// local machine. Absolute times differ from the paper; the SHAPE —
// baseline slowest, each fusion set strictly faster — is the claim under
// reproduction. The configuration is proportionally scaled from
// BERT-LARGE so a full run fits a small container (see DESIGN.md §5).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

using dmv::workloads::kernels::BertConfig;
using dmv::workloads::kernels::BertData;
using dmv::workloads::kernels::make_bert_data;

BertConfig scaled_config() {
  // Scaled configuration chosen to stay in the MEMORY-BOUND regime the
  // paper's measurement sat in: the authors' baseline paired
  // multi-threaded MKL matmuls with single-threaded NumPy elementwise
  // passes, so the un-fused passes over the [B,H,SM,SM] attention
  // intermediates dominated. On this single-core substrate that regime
  // needs the full sequence length (SM=512, giving 8 MB attention
  // matrices that miss cache) and a small head dimension, so the
  // contractions don't drown the elementwise traffic.
  BertConfig config;
  config.B = 1;
  config.H = 8;
  config.SM = 512;
  config.I = 64;
  config.emb = 256;
  return config;
}

template <void (*Kernel)(BertData&)>
void run_bert(benchmark::State& state) {
  BertData data = make_bert_data(scaled_config());
  for (auto _ : state) {
    Kernel(data);
    benchmark::DoNotOptimize(data.out.data());
    benchmark::ClobberMemory();
  }
}

void BM_BertEncoder_Baseline(benchmark::State& state) {
  run_bert<dmv::workloads::kernels::bert_baseline>(state);
}
void BM_BertEncoder_Fusion1(benchmark::State& state) {
  run_bert<dmv::workloads::kernels::bert_fused1>(state);
}
void BM_BertEncoder_Fusion2(benchmark::State& state) {
  run_bert<dmv::workloads::kernels::bert_fused2>(state);
}

BENCHMARK(BM_BertEncoder_Baseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BertEncoder_Fusion1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BertEncoder_Fusion2)->Unit(benchmark::kMillisecond);

double median_ms(void (*kernel)(BertData&), int repetitions) {
  BertData data = make_bert_data(scaled_config());
  std::vector<double> times;
  for (int r = 0; r < repetitions; ++r) {
    const auto start = std::chrono::steady_clock::now();
    kernel(data);
    const auto stop = std::chrono::steady_clock::now();
    times.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void print_table1_summary() {
  const int repetitions = 7;
  const double baseline =
      median_ms(dmv::workloads::kernels::bert_baseline, repetitions);
  const double fusion1 =
      median_ms(dmv::workloads::kernels::bert_fused1, repetitions);
  const double fusion2 =
      median_ms(dmv::workloads::kernels::bert_fused2, repetitions);

  dmv::viz::TextTable table({"BERT encoder", "Time [ms]", "Speedup"});
  char buffer[64];
  auto row = [&](const char* name, double ms) {
    std::snprintf(buffer, sizeof(buffer), "%.2f", ms);
    std::string time = buffer;
    std::snprintf(buffer, sizeof(buffer), "%.1fx", baseline / ms);
    table.add_row({name, time, buffer});
  };
  row("Baseline", baseline);
  row("1st set of loop fusions", fusion1);
  row("2nd set of loop fusions", fusion2);
  std::printf(
      "\nTable I reproduction (BERT rows), median of %d runs, scaled "
      "memory-bound config (B=1 H=8 SM=512 I=64 emb=256):\n%s"
      "Paper shape: baseline slowest, each fusion set strictly faster "
      "(paper factors 3.6-6.3x and 7.1-30.2x come from 10-32-core MKL "
      "machines; single-core factors are smaller but ordered the same).\n",
      repetitions, table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table1_summary();
  return 0;
}
