// The §VI-A case study as a scripted session: optimize the BERT encoder
// layer using only what the global view exposes.
//
// Workflow reproduced:
//   1. load the program, turn on the data-movement heatmap,
//   2. "click" the hottest edges (rank them), discover fusable chains,
//   3. apply map fusion, re-analyze, repeat with the intensity overlay,
//   4. confirm the movement and the low-intensity node count dropped.
//
// Run: ./build/examples/bert_optimization_walkthrough

#include <cstdio>
#include <fstream>

#include "dmv/analysis/analysis.hpp"
#include "dmv/ir/serialize.hpp"
#include "dmv/transforms/transforms.hpp"
#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

void report(const char* title, const dmv::ir::Sdfg& sdfg,
            const dmv::symbolic::SymbolMap& params) {
  int maps = 0;
  for (const dmv::ir::Node& node : sdfg.states()[0].nodes()) {
    if (node.kind == dmv::ir::NodeKind::MapEntry) ++maps;
  }
  int low_intensity = 0;
  for (const dmv::analysis::MapIntensity& intensity :
       dmv::analysis::map_intensities(sdfg, params)) {
    if (intensity.intensity < 0.25) ++low_intensity;
  }
  std::printf(
      "%-22s %2d maps, %2zu containers, %7.2f GB logical movement, %2d "
      "low-intensity maps\n",
      title, maps, sdfg.arrays().size(),
      static_cast<double>(
          dmv::analysis::total_movement_bytes(sdfg).evaluate(params)) /
          1e9,
      low_intensity);
}

}  // namespace

int main() {
  using namespace dmv;
  const symbolic::SymbolMap params = workloads::bert_large();
  ir::Sdfg sdfg = workloads::bert_encoder(workloads::BertStage::Baseline);

  std::printf("== Step 0: the baseline program ==\n");
  report("baseline:", sdfg, params);
  std::printf("\nProgram outline (top of the hierarchy):\n%.600s...\n",
              viz::outline(sdfg).c_str());

  std::printf(
      "\n== Step 1: data-movement heatmap -> click the red edges ==\n");
  auto ranked = analysis::rank_edges_by_volume(sdfg, params);
  for (std::size_t i = 0; i < 8; ++i) {
    std::printf("  #%zu: container '%s', %.2f GB\n", i + 1,
                ranked[i].data.c_str(), ranked[i].bytes / 1e9);
  }

  std::printf(
      "\n== Step 2: the fusion candidates those edges reveal ==\n");
  auto candidates = transforms::find_fusion_candidates(sdfg);
  for (const transforms::FusionCandidate& candidate : candidates) {
    std::printf("  fusable: maps around transient '%s'\n",
                candidate.transient.c_str());
  }

  std::printf("\n== Step 3: apply the first fusion set ==\n");
  // The softmax pipeline (D) and the FFN elementwise chains (Fb, F2b).
  for (const char* transient : {"D", "Fb", "F2b"}) {
    for (const transforms::FusionCandidate& candidate :
         transforms::find_fusion_candidates(sdfg)) {
      if (candidate.transient == transient) {
        transforms::apply_map_fusion(sdfg, candidate);
        std::printf("  fused around '%s'\n", transient);
        break;
      }
    }
  }
  report("after fusion set 1:", sdfg, params);

  std::printf(
      "\n== Step 4: intensity overlay -> fuse the remaining chains ==\n");
  const int more = transforms::fuse_all(sdfg);
  std::printf("  fused %d more map pairs (layernorm/affine chains)\n", more);
  report("after fusion set 2:", sdfg, params);

  std::printf("\n== Step 5: before/after movement diff ==\n");
  ir::Sdfg baseline = workloads::bert_encoder(workloads::BertStage::Baseline);
  analysis::MovementDiff diff =
      analysis::diff_movement(baseline, sdfg, params);
  std::printf("  total: %.2f GB -> %.2f GB\n", diff.before_total / 1e9,
              diff.after_total / 1e9);
  for (std::size_t i = 0; i < diff.containers.size() && i < 5; ++i) {
    const analysis::ContainerDelta& delta = diff.containers[i];
    std::printf("  %-8s %+.3f GB\n", delta.data.c_str(),
                delta.delta() / 1e9);
  }

  std::ofstream("bert_final.json") << ir::to_json(sdfg);
  std::printf(
      "\nFinal graph written to bert_final.json. Interpreter tests "
      "(tests/workloads_test.cpp) verify all three stages compute "
      "identical outputs.\n");
  return 0;
}
