// The §VI-B case study as an interactive session: tune horizontal
// diffusion using the local view, applying each transform the overlays
// suggest — driven through dmv::session::Session, so every stage's
// metrics come out of the memoization cache machinery an interactive
// client would use.
//
// Reproduces the supplementary videos' storyline:
//   1. parameterize at I=J=8, K=5 (1/32 of production size),
//   2. see the 13-point pattern spread out in memory -> reshape,
//   3. see the innermost loop stride through a non-contiguous dim ->
//      reorder the loops,
//   4. see rows wrapping cache lines -> pad the strides,
// then drags the K "slider" across a value range twice — first cold
// (with the prefetcher running ahead), then warm — and prints the
// session's hit/miss/prefetch accounting.
//
// Run: ./build/examples/hdiff_tuning_session

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "dmv/session/session.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/transforms/transforms.hpp"
#include "dmv/viz/animation.hpp"
#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

using namespace dmv;

void local_view_report(const char* stage, session::Session& session) {
  std::shared_ptr<const sim::PipelineResult> metrics = session.metrics();
  const int in_field = metrics->container_index("in_field");
  std::printf(
      "%-28s misses=%5lld (in_field %5lld)  est. physical bytes=%7lld\n",
      stage, static_cast<long long>(metrics->misses.total.misses()),
      static_cast<long long>(
          metrics->misses.per_container[in_field].misses()),
      static_cast<long long>(metrics->movement.total_bytes));
}

// Writes one "animation frame": the elements the given execution touches.
// Frames need the raw event stream, so they are the one place the example
// still simulates a materialized trace outside the session.
void write_frame(const sim::AccessTrace& trace, std::int64_t execution,
                 const std::string& path) {
  const int in_field = trace.container_id("in_field");
  viz::TileRenderOptions options;
  for (const sim::AccessEvent& event : trace.events) {
    if (event.execution == execution && event.container == in_field) {
      options.highlighted.insert(event.flat);
    }
  }
  options.tile_size = 14;
  std::ofstream(path) << render_tiles_svg(trace.layouts[in_field], options);
}

void print_stats(const char* label, const session::SessionStats& stats) {
  std::printf(
      "%-24s hits=%3lld misses=%3lld prefetch issued=%3lld hit=%3lld "
      "evictions=%lld cached=%zu entries (%zu KiB)\n",
      label, static_cast<long long>(stats.hits),
      static_cast<long long>(stats.misses),
      static_cast<long long>(stats.prefetch_issued),
      static_cast<long long>(stats.prefetch_hits),
      static_cast<long long>(stats.evictions), stats.cache_entries,
      stats.cache_bytes / 1024);
  // How each interaction step was actually satisfied by the delta
  // recomputation engine (docs/incremental.md).
  std::printf(
      "%-24s steps: full-hit=%lld symbolic-delta=%lld chunk-delta=%lld "
      "cold=%lld\n",
      "", static_cast<long long>(stats.steps_full_hit),
      static_cast<long long>(stats.steps_symbolic),
      static_cast<long long>(stats.steps_chunk_delta),
      static_cast<long long>(stats.steps_cold));
}

}  // namespace

int main() {
  std::filesystem::create_directories("dmv_renders");
  const symbolic::SymbolMap params = workloads::hdiff_local();

  // One interactive client: metrics subscription = miss classification
  // at an 8-line threshold plus the physical-movement estimate.
  session::SessionConfig config;
  config.pipeline.miss_threshold_lines = 8;
  config.pipeline.movement = true;
  session::Session session(workloads::hdiff(workloads::HdiffVariant::Baseline),
                           config);
  session.set_binding(params);

  std::printf(
      "Parameterized local view: I=J=8, K=5; 64 B lines, 8 B values, "
      "capacity threshold 8 lines.\n\n");
  local_view_report("baseline [I+4,J+4,K]:", session);
  {
    sim::AccessTrace trace = sim::simulate(session.program(), params);
    write_frame(trace, 0, "dmv_renders/session_frame_baseline.svg");
    // Diagnosis 1: the neighborhood spreads across distant rows.
    const int in_field = trace.container_id("in_field");
    std::set<std::int64_t> lines;
    const auto& layout = trace.layouts[in_field];
    for (const sim::AccessEvent& event : trace.events) {
      if (event.execution != 0 || event.container != in_field) continue;
      lines.insert(layout.byte_address(layout.unflatten(event.flat)) / 64);
    }
    std::printf(
        "  diagnosis: one iteration touches %zu distinct cache lines -> "
        "poor spatial locality, reshape in_field\n",
        lines.size());
  }

  // Step 1: reshape in_field [I+4, J+4, K] -> [K, I+4, J+4]. Artifacts
  // of the baseline stay cached under its content hash — the session
  // recomputes only because the program version changed.
  session.edit_program([](ir::Sdfg& sdfg) {
    transforms::permute_dimensions(sdfg, "in_field", {2, 0, 1});
  });
  local_view_report("reshaped [K,I+4,J+4]:", session);
  {
    write_frame(sim::simulate(session.program(), params), 0,
                "dmv_renders/session_frame_reshaped.svg");
    std::printf(
        "  diagnosis: innermost loop k now strides the slowest dimension "
        "-> reorder loops\n");
  }

  // Step 2: make k the outermost loop parameter.
  session.edit_program([](ir::Sdfg& sdfg) {
    ir::State& state = sdfg.states().front();
    for (const ir::Node& node : state.nodes()) {
      if (node.kind == ir::NodeKind::MapEntry) {
        transforms::loop_interchange(state, node.id, {2, 0, 1});
        break;
      }
    }
  });
  local_view_report("loops reordered (k,i,j):", session);
  {
    auto layout = layout::ConcreteLayout::from(
        session.program().array("in_field"), params);
    const auto wrapped = layout::rows_with_line_wraparound(layout, 2, 64);
    std::printf(
        "  diagnosis: %zu rows start mid-cache-line (wrap-around "
        "pollution) -> pad the row stride\n",
        wrapped.size());
  }

  // Step 3: pad rows to a multiple of the cache line (8 doubles).
  session.edit_program([](ir::Sdfg& sdfg) {
    transforms::pad_innermost_stride(sdfg, "in_field", 8);
  });
  local_view_report("rows padded to 16:", session);
  {
    auto layout = layout::ConcreteLayout::from(
        session.program().array("in_field"), params);
    std::printf(
        "  result: %zu wrap-around rows remain; allocation grows to %lld "
        "elements for %lld logical\n",
        layout::rows_with_line_wraparound(layout, 2, 64).size(),
        static_cast<long long>(layout.allocated_elements()),
        static_cast<long long>(layout.total_elements()));
    write_frame(sim::simulate(session.program(), params), 0,
                "dmv_renders/session_frame_padded.svg");
  }

  // Slider sweep on the tuned program: drag K from 3 to 10 and back.
  // The first pass is cold at the leading edge, but the prefetcher runs
  // ahead of the drag on the dmv::par pool; the reverse pass is pure
  // cache hits. Cached results are bit-identical to uncached ones, so
  // the report numbers never depend on what was or wasn't prefetched.
  std::printf("\nDragging the K slider over [3, 10] and back:\n");
  session.reset_stats();
  for (std::int64_t k = 3; k <= 10; ++k) {
    session.set_symbol("K", k);
    (void)session.metrics();
  }
  print_stats("  forward (cold):", session.stats());
  session.reset_stats();
  for (std::int64_t k = 10; k >= 3; --k) {
    session.set_symbol("K", k);
    (void)session.metrics();
  }
  print_stats("  reverse (warm):", session.stats());

  // The same drag on the FIXED-CAPACITY build of the tuned program:
  // arrays allocated at KMAX once, the K slider restricting only the
  // iteration domain. Every forward step past the first is now an
  // append-only chunk delta — the simulator touches just the new k
  // slices and the metric checkpoint resumes in place — while results
  // stay bit-identical to cold evaluation.
  // (I=J=20 here: a k slice must clear the delta planner's per-chunk
  // event floor for slices to map one-to-one onto plan chunks.)
  std::printf(
      "\nSame drag, fixed-capacity build (I=J=20, K slider, KMAX=10):\n");
  {
    session::Session interactive(
        workloads::fixed_capacity(session.program(), {{"K", "KMAX"}}),
        config);
    symbolic::SymbolMap binding{{"I", 20}, {"J", 20}};
    binding["KMAX"] = 10;
    binding["K"] = 3;
    interactive.set_binding(binding);
    (void)interactive.metrics();
    interactive.reset_stats();
    for (std::int64_t k = 4; k <= 10; ++k) {
      interactive.set_symbol("K", k);
      (void)interactive.metrics();
    }
    print_stats("  forward (delta):", interactive.stats());
  }

  // Bonus: a self-playing animation (§V-C playback) of the first 25
  // stencil applications on the final layout — open in a browser.
  {
    sim::AccessTrace trace = sim::simulate(session.program(), params);
    viz::AnimationOptions animation;
    animation.max_frames = 25;
    animation.seconds_per_frame = 0.25;
    std::vector<viz::AnimationFrame> frames =
        viz::animation_frames(trace, animation);
    std::ofstream("dmv_renders/session_playback.svg")
        << viz::render_animated_tiles_svg(
               trace, trace.container_id("in_field"), frames, animation);
  }

  std::printf(
      "\nAnimation frames written to dmv_renders/session_frame_*.svg and "
      "a self-playing SMIL animation to dmv_renders/session_playback.svg."
      "\nThe same tuned program measured at full size: see "
      "bench/table1_hdiff.\n");
  return 0;
}
