// Quickstart: the whole library in one sitting.
//
// Builds a small parametric program (a matrix-vector product), then runs
// the two analysis levels the paper describes:
//   global view  — symbolic data-movement volumes, operation counts,
//                  arithmetic intensity, a rendered heatmap overlay;
//   local view   — bind the parameters, simulate the exact access
//                  pattern, compute reuse distances and predicted cache
//                  misses, estimate physical data movement.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>
#include <fstream>

#include "dmv/analysis/analysis.hpp"
#include "dmv/builder/program_builder.hpp"
#include "dmv/exec/interpreter.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/viz/render.hpp"

int main() {
  using namespace dmv;

  // ---- 1. Build y[i] += A[i,j] * x[j] over symbolic M, N.
  builder::ProgramBuilder program("matvec");
  program.symbols({"M", "N"});
  program.array("A", {"M", "N"});
  program.array("x", {"N"});
  program.array("y", {"M"});
  program.state("compute");
  program.mapped_tasklet(
      "mv", {{"i", "0:M-1"}, {"j", "0:N-1"}},
      {{"a", "A", "i, j"}, {"v", "x", "j"}}, "o = a * v",
      {{"o", "y", "i", ir::Wcr::Sum}});
  ir::Sdfg sdfg = program.take();  // Validates the graph.

  // ---- 2. Global view: symbolic metrics, evaluated on demand.
  symbolic::Expr volume = analysis::total_movement_bytes(sdfg);
  symbolic::Expr operations = analysis::total_operations(sdfg);
  std::printf("symbolic movement: %s bytes\n", volume.to_string().c_str());
  std::printf("symbolic operations: %s\n", operations.to_string().c_str());
  symbolic::SymbolMap params{{"M", 8}, {"N", 16}};
  std::printf("at M=8, N=16: %lld bytes moved, %lld operations\n",
              static_cast<long long>(volume.evaluate(params)),
              static_cast<long long>(operations.evaluate(params)));

  // Scaling analysis: which parameter dominates? (Both linear here.)
  for (const analysis::SymbolScaling& scaling :
       analysis::movement_scaling(sdfg, params)) {
    std::printf("  movement ~ %s^%.2f\n", scaling.symbol.c_str(),
                scaling.exponent);
  }

  // Render the graph with a data-movement heatmap overlay.
  auto volumes = analysis::edge_volumes(sdfg);
  std::vector<double> values;
  for (const auto& edge_volume : volumes) {
    values.push_back(
        static_cast<double>(edge_volume.bytes.evaluate(params)));
  }
  viz::HeatmapScale scale =
      viz::HeatmapScale::fit(values, viz::ScalingPolicy::MedianCentered);
  viz::GraphRenderOptions options;
  for (std::size_t i = 0; i < volumes.size(); ++i) {
    options.edge_heat[volumes[i].ref.edge_index] = scale.normalize(values[i]);
  }
  std::ofstream("quickstart_graph.svg")
      << render_state_svg(sdfg.states()[0], options);
  std::printf("wrote quickstart_graph.svg\n");

  // ---- 3. Local view: simulate the exact access pattern.
  sim::AccessTrace trace = sim::simulate(sdfg, params);
  sim::AccessCounts counts = sim::count_accesses(trace);
  const int x_id = trace.container_id("x");
  std::printf("x[0] is read %lld times (once per row)\n",
              static_cast<long long>(counts.reads[x_id][0]));

  sim::StackDistanceResult distances = sim::stack_distances(trace, 64);
  sim::MissReport report = sim::classify_misses(trace, distances,
                                                /*threshold_lines=*/8);
  sim::MovementEstimate movement =
      sim::physical_movement(trace, report, 64);
  std::printf(
      "predicted: %lld cold + %lld capacity misses -> ~%lld bytes from "
      "main memory (vs %lld logical)\n",
      static_cast<long long>(report.total.cold),
      static_cast<long long>(report.total.capacity),
      static_cast<long long>(movement.total_bytes),
      static_cast<long long>(volume.evaluate(params)));

  // ---- 4. Execute the program for real (reference interpreter).
  exec::Buffers buffers(sdfg, params);
  std::vector<double> a(8 * 16, 1.0), x_values(16);
  for (int j = 0; j < 16; ++j) x_values[j] = j;
  buffers.set_logical("A", a);
  buffers.set_logical("x", x_values);
  exec::run(sdfg, params, buffers);
  std::printf("y[0] = %.1f (expected sum 0..15 = 120)\n",
              buffers.logical("y")[0]);
  return 0;
}
