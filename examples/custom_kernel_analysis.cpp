// Analyzing your own kernel: a 5-point Jacobi sweep built from scratch
// with the public builder API, then pushed through every analysis the
// library offers — the template a downstream user would copy.
//
// Also demonstrates a what-if layout experiment the paper's §V-D overlay
// enables: compare cache behavior of row-major vs column-major storage
// of the same kernel without touching the kernel.
//
// Run: ./build/examples/custom_kernel_analysis

#include <cstdio>
#include <fstream>

#include "dmv/analysis/analysis.hpp"
#include "dmv/builder/program_builder.hpp"
#include "dmv/exec/interpreter.hpp"
#include "dmv/ir/serialize.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/viz/render.hpp"

namespace {

using namespace dmv;

ir::Sdfg build_jacobi() {
  builder::ProgramBuilder program("jacobi2d");
  program.symbols({"N"});
  program.array("grid", {"N + 2", "N + 2"});
  program.array("next", {"N", "N"});
  program.state("sweep");
  program.mapped_tasklet(
      "stencil", {{"i", "0:N-1"}, {"j", "0:N-1"}},
      {{"c", "grid", "i + 1, j + 1"},
       {"n", "grid", "i, j + 1"},
       {"s", "grid", "i + 2, j + 1"},
       {"w", "grid", "i + 1, j"},
       {"e", "grid", "i + 1, j + 2"}},
      "o = 0.2 * (c + n + s + w + e)", {{"o", "next", "i, j"}});
  return program.take();
}

sim::MissStats misses_for_layout(bool column_major,
                                 const symbolic::SymbolMap& params) {
  ir::Sdfg sdfg = build_jacobi();
  if (column_major) {
    ir::DataDescriptor& grid = sdfg.array("grid");
    grid.strides = ir::DataDescriptor::column_major_strides(grid.shape);
  }
  sim::AccessTrace trace = sim::simulate(sdfg, params);
  sim::StackDistanceResult distances = sim::stack_distances(trace, 64);
  return sim::classify_misses(trace, distances, 8).total;
}

}  // namespace

int main() {
  ir::Sdfg sdfg = build_jacobi();
  const symbolic::SymbolMap params{{"N", 12}};

  // Global metrics.
  std::printf("Jacobi 5-point sweep over grid[N+2, N+2]\n");
  std::printf("  movement: %s bytes\n",
              analysis::total_movement_bytes(sdfg).to_string().c_str());
  std::printf("  operations: %s\n",
              analysis::total_operations(sdfg).to_string().c_str());
  for (const analysis::MapIntensity& intensity :
       analysis::map_intensities(sdfg, params)) {
    std::printf("  map '%s': %.0f ops / %.0f boundary bytes = intensity "
                "%.3f\n",
                intensity.label.c_str(), intensity.operations,
                intensity.boundary_bytes, intensity.intensity);
  }

  // Local view: access counts on the input grid.
  sim::AccessTrace trace = sim::simulate(sdfg, params);
  sim::AccessCounts counts = sim::count_accesses(trace);
  const int grid = trace.container_id("grid");
  std::vector<std::int64_t> totals = counts.total(grid);
  std::vector<double> heat(totals.size());
  viz::HeatmapScale scale = viz::HeatmapScale::fit(
      std::vector<double>(totals.begin(), totals.end()),
      viz::ScalingPolicy::Histogram);
  for (std::size_t e = 0; e < totals.size(); ++e) {
    heat[e] = scale.normalize(static_cast<double>(totals[e]));
  }
  std::printf("\nAccess-count heatmap of grid (interior hit 5x):\n%s",
              viz::ascii_heatmap(trace.layouts[grid], heat).c_str());

  // Layout what-if: row-major vs column-major grid.
  std::printf("\nLayout experiment (64 B lines, 8-line cache):\n");
  const sim::MissStats row = misses_for_layout(false, params);
  const sim::MissStats column = misses_for_layout(true, params);
  std::printf("  row-major:    %lld misses\n",
              static_cast<long long>(row.misses()));
  std::printf("  column-major: %lld misses\n",
              static_cast<long long>(column.misses()));
  std::printf(
      "  (the sweep iterates j innermost, so row-major wins; flip the "
      "loop order and the comparison flips with it)\n");

  // Validate the kernel numerically.
  exec::Buffers buffers(sdfg, params);
  std::vector<double> initial(14 * 14, 1.0);
  buffers.set_logical("grid", initial);
  exec::run(sdfg, params, buffers);
  std::printf("\nnext[0][0] = %.2f (uniform field stays 1.0)\n",
              buffers.logical("next")[0]);

  std::ofstream("jacobi.json") << ir::to_json(sdfg);
  std::printf("IR dumped to jacobi.json\n");
  return 0;
}
