// analyze_cli: a command-line analysis session over serialized SDFGs —
// what "remote analysis" (paper §VIII-b) looks like without an editor:
// ship the JSON to the target machine, analyze there.
//
// Usage:
//   analyze_cli <program.json> [--param NAME=VALUE ...] [commands...]
//
// Commands (default: summary):
//   summary     program outline + container inventory
//   volume      per-edge logical movement, ranked
//   scaling     per-symbol power-law exponents
//   simulate    local view: misses + physical movement (needs all params)
//   roofline    per-map roofline time model
//   svg=<path>  write the movement-heatmap SVG
//
// Example:
//   ./build/examples/analyze_cli jacobi.json --param N=12 \
//       summary volume simulate svg=jacobi.svg
//
// (Generate inputs with ir::to_json — e.g. run
//  examples/custom_kernel_analysis first to get jacobi.json.)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dmv/analysis/analysis.hpp"
#include "dmv/analysis/profile.hpp"
#include "dmv/ir/json_reader.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/viz/render.hpp"

namespace {

using namespace dmv;

int usage() {
  std::fprintf(stderr,
               "usage: analyze_cli <program.json> [--param NAME=VALUE ...] "
               "[summary|volume|scaling|simulate|roofline|svg=<path> ...]\n");
  return 2;
}

void command_summary(const ir::Sdfg& sdfg) {
  std::printf("%s", viz::outline(sdfg).c_str());
  viz::TextTable table({"container", "shape", "elem bytes", "transient"});
  for (const auto& [name, descriptor] : sdfg.arrays()) {
    std::string shape;
    for (int d = 0; d < descriptor.rank(); ++d) {
      shape += (d ? ", " : "") + descriptor.shape[d].to_string();
    }
    table.add_row({name, "[" + shape + "]",
                   std::to_string(descriptor.element_size),
                   descriptor.transient ? "yes" : "no"});
  }
  std::printf("%s", table.str().c_str());
}

void command_volume(const ir::Sdfg& sdfg, const symbolic::SymbolMap& params) {
  viz::TextTable table({"rank", "container", "bytes"});
  auto ranked = analysis::rank_edges_by_volume(sdfg, params);
  for (std::size_t i = 0; i < ranked.size() && i < 15; ++i) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.3g", ranked[i].bytes);
    table.add_row({std::to_string(i + 1), ranked[i].data, buffer});
  }
  std::printf("%s", table.str().c_str());
}

void command_scaling(const ir::Sdfg& sdfg,
                     const symbolic::SymbolMap& params) {
  for (const analysis::SymbolScaling& scaling :
       analysis::movement_scaling(sdfg, params)) {
    std::printf("  movement ~ %s^%.2f\n", scaling.symbol.c_str(),
                scaling.exponent);
  }
}

void command_simulate(const ir::Sdfg& sdfg,
                      const symbolic::SymbolMap& params) {
  sim::AccessTrace trace = sim::simulate(sdfg, params);
  sim::StackDistanceResult distances = sim::stack_distances(trace, 64);
  sim::MissReport report = sim::classify_misses(trace, distances, 8);
  sim::MovementEstimate movement =
      sim::physical_movement(trace, report, 64);
  viz::TextTable table({"container", "accesses", "misses", "est. bytes"});
  for (std::size_t c = 0; c < trace.containers.size(); ++c) {
    table.add_row({trace.containers[c],
                   std::to_string(report.per_container[c].accesses()),
                   std::to_string(report.per_container[c].misses()),
                   std::to_string(movement.bytes_per_container[c])});
  }
  std::printf("%s", table.str().c_str());
}

void command_roofline(const ir::Sdfg& sdfg,
                      const symbolic::SymbolMap& params) {
  viz::TextTable table({"map", "ops", "bytes", "bound", "seconds"});
  for (const analysis::MapProfile& profile :
       analysis::roofline_profile(sdfg, params)) {
    char seconds[32], ops[32], bytes[32];
    std::snprintf(seconds, sizeof(seconds), "%.3g", profile.seconds);
    std::snprintf(ops, sizeof(ops), "%.3g", profile.operations);
    std::snprintf(bytes, sizeof(bytes), "%.3g", profile.boundary_bytes);
    table.add_row({profile.label, ops, bytes,
                   profile.bound == analysis::Bound::Compute ? "compute"
                                                             : "memory",
                   seconds});
  }
  std::printf("%s", table.str().c_str());
}

void command_svg(const ir::Sdfg& sdfg, const symbolic::SymbolMap& params,
                 const std::string& path) {
  auto volumes = analysis::edge_volumes(sdfg);
  std::vector<double> values;
  for (const auto& volume : volumes) {
    values.push_back(static_cast<double>(volume.bytes.evaluate(params)));
  }
  viz::HeatmapScale scale =
      viz::HeatmapScale::fit(values, viz::ScalingPolicy::MedianCentered);
  viz::GraphRenderOptions options;
  for (std::size_t i = 0; i < volumes.size(); ++i) {
    options.edge_heat[volumes[i].ref.edge_index] = scale.normalize(values[i]);
  }
  std::ofstream(path) << render_state_svg(sdfg.states()[0], options);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();

  std::ifstream input(argv[1]);
  if (!input) {
    std::fprintf(stderr, "analyze_cli: cannot open '%s'\n", argv[1]);
    return 1;
  }
  std::ostringstream text;
  text << input.rdbuf();

  symbolic::SymbolMap params;
  std::vector<std::string> commands;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--param") == 0) {
      if (i + 1 >= argc) return usage();
      const std::string assignment = argv[++i];
      const std::size_t equals = assignment.find('=');
      if (equals == std::string::npos) return usage();
      params[assignment.substr(0, equals)] =
          std::stoll(assignment.substr(equals + 1));
    } else {
      commands.emplace_back(argv[i]);
    }
  }
  if (commands.empty()) commands.emplace_back("summary");

  try {
    ir::Sdfg sdfg = ir::from_json(text.str());
    for (const std::string& command : commands) {
      std::printf("== %s ==\n", command.c_str());
      if (command == "summary") {
        command_summary(sdfg);
      } else if (command == "volume") {
        command_volume(sdfg, params);
      } else if (command == "scaling") {
        command_scaling(sdfg, params);
      } else if (command == "simulate") {
        command_simulate(sdfg, params);
      } else if (command == "roofline") {
        command_roofline(sdfg, params);
      } else if (command.rfind("svg=", 0) == 0) {
        command_svg(sdfg, params, command.substr(4));
      } else {
        std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
        return usage();
      }
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "analyze_cli: %s\n", error.what());
    return 1;
  }
  return 0;
}
